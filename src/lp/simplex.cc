#include "lp/simplex.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace bsio::lp {

namespace {
// Devex weights above this trigger a reference-framework reset.
constexpr double kDevexResetThreshold = 1e7;

// Which bound a nonbasic variable parks at to be dual feasible under cost c.
bool park_prefers_lower(double c, double lo, double up) {
  bool prefer_lower = c >= 0.0;
  if (prefer_lower && !std::isfinite(lo)) prefer_lower = false;
  if (!prefer_lower && !std::isfinite(up)) prefer_lower = true;
  return prefer_lower;
}
}  // namespace

DualSimplex::DualSimplex(const Model& model, const SimplexOptions& opts)
    : model_(model), opts_(opts) {
  n_ = model.num_vars();
  m_ = model.num_rows();
  total_ = n_ + m_;
  if (opts_.refactor_every <= 0) {
    if (opts_.use_dense_basis) {
      // Refactorisation costs O(m^3), a pivot update O(m^2): amortise the
      // refactorisation to at most ~one pivot's worth of work, with a floor
      // that keeps small models numerically fresh.
      opts_.refactor_every = std::max(64, m_);
    } else {
      // Bound the eta file: each eta lengthens every FTRAN/BTRAN, while a
      // sparse refactorisation costs roughly a handful of solves.
      opts_.refactor_every = 64;
    }
  }
  perturb_active_ = !opts_.use_dense_basis && opts_.perturb_scale > 0.0;
  build_columns(model);
  if (!opts_.use_dense_basis) {
    rho_s_.resize(m_);
    alpha_s_.resize(total_);
    w_s_.resize(m_);
    rhs_s_.resize(m_);
    pending_rhs_.resize(m_);
    racc_.assign(m_, 0.0);
    basis_cols_.resize(m_);
  }
  reset_to_slack_basis();
}

void DualSimplex::build_columns(const Model& model) {
  col_idx_.assign(total_, {});
  col_val_.assign(total_, {});
  cost_.assign(total_, 0.0);
  lo_.assign(total_, 0.0);
  up_.assign(total_, 0.0);
  b_.assign(m_, 0.0);

  for (int v = 0; v < n_; ++v) {
    cost_[v] = model.cost(v);
    lo_[v] = model.lower(v);
    up_[v] = model.upper(v);
    BSIO_CHECK_MSG(std::isfinite(lo_[v]) || std::isfinite(up_[v]),
                   "free structural variables are not supported");
  }
  for (int r = 0; r < m_; ++r) {
    b_[r] = model.rhs(r);
    for (const auto& e : model.row(r)) {
      if (e.coef == 0.0) continue;
      col_idx_[e.var].push_back(r);
      col_val_[e.var].push_back(e.coef);
    }
    const int s = n_ + r;
    col_idx_[s].push_back(r);
    col_val_[s].push_back(1.0);
    switch (model.sense(r)) {
      case Sense::kLe:
        lo_[s] = 0.0;
        up_[s] = kInf;
        break;
      case Sense::kGe:
        lo_[s] = -kInf;
        up_[s] = 0.0;
        break;
      case Sense::kEq:
        lo_[s] = up_[s] = 0.0;
        break;
    }
  }

  pcost_ = cost_;
  if (perturb_active_) {
    // Deterministic per-variable offsets, pushed toward the variable's
    // parking side so the all-slack basis stays dual feasible.
    for (int v = 0; v < n_; ++v) {
      const double u =
          static_cast<double>(hash_mix(static_cast<std::uint64_t>(v) + 1) >>
                              11) *
          0x1.0p-53;  // [0, 1)
      const double xi =
          opts_.perturb_scale * (1.0 + std::abs(cost_[v])) * (0.5 + u);
      pcost_[v] = cost_[v] +
                  (park_prefers_lower(cost_[v], lo_[v], up_[v]) ? xi : -xi);
    }
  }
}

void DualSimplex::reset_to_slack_basis() {
  basic_.resize(m_);
  basic_pos_.assign(total_, -1);
  state_.assign(total_, kAtLower);
  for (int r = 0; r < m_; ++r) {
    basic_[r] = n_ + r;
    basic_pos_[n_ + r] = r;
    state_[n_ + r] = kBasic;
  }
  for (int v = 0; v < n_; ++v) {
    // Park at the dual-feasible bound: cost >= 0 wants the lower bound.
    state_[v] =
        park_prefers_lower(cost_[v], lo_[v], up_[v]) ? kAtLower : kAtUpper;
  }
  if (opts_.use_dense_basis) {
    binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int r = 0; r < m_; ++r)
      binv_[static_cast<std::size_t>(r) * m_ + r] = 1.0;
    rho_.assign(m_, 0.0);
    w_.assign(m_, 0.0);
  } else {
    // The slack basis is the identity: its factorisation cannot fail.
    const bool ok = factorize_current_basis();
    BSIO_CHECK_MSG(ok, "identity basis failed to factorise");
    gamma_.assign(m_, 1.0);
    pending_rhs_.clear();
    pending_ = false;
  }
  // Slack basis, slack costs zero: y = 0, d_j = c_j.
  duals_perturbed_ = perturb_active_;
  d_ = duals_perturbed_ ? pcost_ : cost_;
  xb_.assign(m_, 0.0);
  x_dirty_ = true;
  pivots_since_refactor_ = 0;
}

double DualSimplex::value(int var) const {
  BSIO_DCHECK(var >= 0 && var < n_);
  switch (state_[var]) {
    case kBasic:
      return xb_[basic_pos_[var]];
    case kAtLower:
      return lo_[var];
    default:
      return up_[var];
  }
}

std::vector<double> DualSimplex::values() const {
  std::vector<double> x(n_);
  for (int v = 0; v < n_; ++v) x[v] = value(v);
  return x;
}

void DualSimplex::set_bounds(int var, double lo, double up) {
  BSIO_CHECK(var >= 0 && var < n_);
  BSIO_CHECK(lo <= up);
  if (opts_.use_dense_basis) {
    lo_[var] = lo;
    up_[var] = up;
    // A nonbasic variable keeps its side; its value snaps to the new bound,
    // which leaves reduced costs (hence dual feasibility) untouched.
    x_dirty_ = true;
    return;
  }
  if (state_[var] == kBasic || x_dirty_) {
    // Basic: x_B is untouched; any new violation surfaces at the next
    // pricing. Dirty: the next solve recomputes x_B from scratch anyway, so
    // accumulating a delta against the stale point would be wrong (and a
    // restored basis may park nonbasics on re-tightened infinite bounds).
    lo_[var] = lo;
    up_[var] = up;
    return;
  }
  const double old_val = nonbasic_value(var);
  lo_[var] = lo;
  up_[var] = up;
  const double new_val = nonbasic_value(var);
  // The value snap shifts b - N x_N by A_var * (new - old); accumulate it so
  // the next solve applies all deltas with a single hypersparse FTRAN.
  if (new_val != old_val) add_nonbasic_delta(var, new_val - old_val);
}

void DualSimplex::add_nonbasic_delta(int var, double dx) {
  BSIO_CHECK_MSG(std::isfinite(dx), "nonbasic variable at infinite bound");
  const auto& idx = col_idx_[var];
  const auto& val = col_val_[var];
  for (std::size_t k = 0; k < idx.size(); ++k)
    pending_rhs_.add(idx[k], val[k] * dx);
  pending_ = true;
}

BasisSnapshot DualSimplex::snapshot_basis() const {
  BSIO_CHECK_MSG(!opts_.use_dense_basis,
                 "snapshot_basis requires the sparse basis");
  return BasisSnapshot{basic_, state_};
}

void DualSimplex::restore_basis(const BasisSnapshot& snap) {
  BSIO_CHECK_MSG(!opts_.use_dense_basis,
                 "restore_basis requires the sparse basis");
  BSIO_CHECK(snap.basic.size() == static_cast<std::size_t>(m_));
  BSIO_CHECK(snap.state.size() == static_cast<std::size_t>(total_));
  basic_ = snap.basic;
  state_ = snap.state;
  basic_pos_.assign(total_, -1);
  for (int r = 0; r < m_; ++r) {
    BSIO_CHECK(basic_[r] >= 0 && basic_[r] < total_);
    basic_pos_[basic_[r]] = r;
  }
  pending_rhs_.clear();
  pending_ = false;
  if (!factorize_current_basis()) {
    // A basis that factorised on the instance that captured it can only
    // fail here through pathological roundoff; the slack restart is the
    // same (deterministic) recovery refactorize_sparse uses.
    reset_to_slack_basis();
    return;
  }
  // Canonical post-restore state: devex weights back to the reference
  // frame, duals recomputed for the active cost vector, primal values
  // marked stale. Any instance restored from `snap` now solves the next
  // bound set identically, whatever it solved before.
  gamma_.assign(m_, 1.0);
  duals_perturbed_ = perturb_active_;
  recompute_duals_sparse(duals_perturbed_ ? pcost_ : cost_);
  x_dirty_ = true;
}

void DualSimplex::restore_dual_feasible_sides() {
  // After bound relaxations (B&B backtracking) a nonbasic variable can sit
  // on the side its reduced cost forbids; flip it to the other bound, which
  // restores dual feasibility without touching the basis.
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic || lo_[j] == up_[j]) continue;
    if (state_[j] == kAtLower && d_[j] < -opts_.dual_tol &&
        std::isfinite(up_[j])) {
      state_[j] = kAtUpper;
      if (opts_.use_dense_basis)
        x_dirty_ = true;
      else
        add_nonbasic_delta(j, up_[j] - lo_[j]);
    } else if (state_[j] == kAtUpper && d_[j] > opts_.dual_tol &&
               std::isfinite(lo_[j])) {
      state_[j] = kAtLower;
      if (opts_.use_dense_basis)
        x_dirty_ = true;
      else
        add_nonbasic_delta(j, lo_[j] - up_[j]);
    }
  }
}

// ---------------------------------------------------------------------------
// Sparse revised simplex path.
// ---------------------------------------------------------------------------

bool DualSimplex::factorize_current_basis() {
  for (int i = 0; i < m_; ++i) {
    auto& col = basis_cols_[i];
    col.clear();
    const int j = basic_[i];
    const auto& idx = col_idx_[j];
    const auto& val = col_val_[j];
    for (std::size_t k = 0; k < idx.size(); ++k)
      col.emplace_back(idx[k], val[k]);
  }
  if (!lu_.factorize(m_, basis_cols_)) return false;
  ++stats_.factorizations;
  if (lu_.fill_nnz() > stats_.factor_fill_nnz)
    stats_.factor_fill_nnz = lu_.fill_nnz();
  pivots_since_refactor_ = 0;
  return true;
}

void DualSimplex::refactorize_sparse() {
  if (!factorize_current_basis()) {
    // Accumulated roundoff degraded the basis beyond repair. Recover by
    // restarting from the all-slack basis (always dual feasible here);
    // the caller's solve loop re-optimises from scratch.
    reset_to_slack_basis();
  }
  recompute_duals_sparse(duals_perturbed_ ? pcost_ : cost_);
  restore_dual_feasible_sides();
  recompute_x_basic_sparse();
}

void DualSimplex::recompute_duals_sparse(const std::vector<double>& c) {
  // y^T = c_B^T B^{-1} via one BTRAN; then d_j = c_j - y^T A_j.
  rho_s_.clear();
  for (int i = 0; i < m_; ++i) {
    const double cb = c[basic_[i]];
    if (cb != 0.0) rho_s_.set(i, cb);
  }
  lu_.btran(rho_s_);
  const std::vector<double>& y = rho_s_.val;
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic) {
      d_[j] = 0.0;
      continue;
    }
    double s = 0.0;
    const auto& idx = col_idx_[j];
    const auto& val = col_val_[j];
    for (std::size_t k = 0; k < idx.size(); ++k) s += y[idx[k]] * val[k];
    d_[j] = c[j] - s;
  }
  rho_s_.clear();
}

void DualSimplex::recompute_x_basic_sparse() {
  // r = b - sum over nonbasic of A_j x_j; x_B = B^{-1} r via FTRAN.
  for (int i = 0; i < m_; ++i) racc_[i] = b_[i];
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic) continue;
    const double xj = nonbasic_value(j);
    BSIO_CHECK_MSG(std::isfinite(xj), "nonbasic variable at infinite bound");
    if (xj == 0.0) continue;
    const auto& idx = col_idx_[j];
    const auto& val = col_val_[j];
    for (std::size_t k = 0; k < idx.size(); ++k) racc_[idx[k]] -= val[k] * xj;
  }
  rhs_s_.clear();
  for (int i = 0; i < m_; ++i)
    if (racc_[i] != 0.0) rhs_s_.set(i, racc_[i]);
  lu_.ftran(rhs_s_);
  std::fill(xb_.begin(), xb_.end(), 0.0);
  for (int i : rhs_s_.idx) xb_[i] = rhs_s_.val[i];
  rhs_s_.clear();
  pending_rhs_.clear();
  pending_ = false;
  x_dirty_ = false;
}

void DualSimplex::apply_pending_bound_deltas() {
  // delta x_B = -B^{-1} (A delta x_N), one FTRAN for all accumulated deltas.
  lu_.ftran(pending_rhs_);
  for (int i : pending_rhs_.idx)
    if (pending_rhs_.val[i] != 0.0) xb_[i] -= pending_rhs_.val[i];
  pending_rhs_.clear();
  pending_ = false;
}

bool DualSimplex::pivot_step_sparse() {
  // 1. Leaving row by devex dual pricing: maximise violation^2 / gamma.
  int r = -1;
  bool above = false;  // true: x_B[r] > upper
  double best_score = 0.0;
  for (int i = 0; i < m_; ++i) {
    const int v = basic_[i];
    double viol;
    bool ab;
    if (xb_[i] < lo_[v] - opts_.feas_tol) {
      viol = lo_[v] - xb_[i];
      ab = false;
    } else if (xb_[i] > up_[v] + opts_.feas_tol) {
      viol = xb_[i] - up_[v];
      ab = true;
    } else {
      continue;
    }
    const double score = viol * viol / gamma_[i];
    if (score > best_score) {  // strict ">" keeps the smallest row on ties
      best_score = score;
      r = i;
      above = ab;
    }
  }
  if (r < 0) {
    result_status_ = SolveStatus::kOptimal;
    return false;
  }
  const int leave = basic_[r];

  // 2. Pricing row: rho = e_r^T B^{-1} (one BTRAN), then
  // alpha_j = rho . A_j accumulated row-wise over rho's nonzeros only.
  ++stats_.pricing_passes;
  rho_s_.clear();
  rho_s_.set(r, 1.0);
  lu_.btran(rho_s_);
  alpha_s_.clear();
  for (int i : rho_s_.idx) {
    const double ri = rho_s_.val[i];
    if (ri == 0.0) continue;
    alpha_s_.add(n_ + i, ri);  // slack column of row i is e_i
    for (const auto& e : model_.row(i)) {
      if (e.coef != 0.0) alpha_s_.add(e.var, ri * e.coef);
    }
  }

  // 3. Bound-flip ("long-step") dual ratio test. Candidates sorted by
  // ratio |d_j / alpha_j|; while the leaving row's violation survives a
  // candidate's full bound-to-bound flip, flip it (it is cheaper than a
  // pivot) and keep going; the first candidate that cannot be flipped
  // enters the basis.
  cands_.clear();
  for (int j : alpha_s_.idx) {
    if (state_[j] == kBasic) continue;
    const double a = alpha_s_.val[j];
    if (std::abs(a) < opts_.pivot_tol) continue;
    if (lo_[j] == up_[j]) continue;  // fixed: cannot re-enter usefully
    const bool at_lower = state_[j] == kAtLower;
    const bool eligible = above ? ((at_lower && a > 0.0) || (!at_lower && a < 0.0))
                                : ((at_lower && a < 0.0) || (!at_lower && a > 0.0));
    if (!eligible) continue;
    cands_.push_back({std::abs(d_[j] / a), std::abs(a), j});
  }
  if (cands_.empty()) {
    result_status_ = SolveStatus::kInfeasible;
    return false;
  }

  // Walk the ratio breakpoints in ascending order: a boxed candidate is
  // passed (flipped) while the leaving row's violation survives its full
  // bound-to-bound swing; the first candidate that cannot be flipped enters.
  // Candidates tied with the entering ratio are NOT flipped — under heavy
  // degeneracy (many zero reduced costs) such flips gain nothing dually and
  // only thrash the primal point.
  //
  // Fast path: a plain min-scan finds the first breakpoint; the heap (whose
  // build cost would dominate iterations that take no flip) is only built
  // when that candidate actually gets flipped.
  const auto before = [](const RatioCand& x, const RatioCand& y) {
    if (x.ratio != y.ratio) return x.ratio < y.ratio;
    if (x.aabs != y.aabs) return x.aabs > y.aabs;
    return x.j < y.j;
  };
  double delta = above ? xb_[r] - up_[leave] : lo_[leave] - xb_[r];
  RatioCand enter;
  flips_.clear();
  {
    std::size_t best = 0;
    for (std::size_t k = 1; k < cands_.size(); ++k)
      if (before(cands_[k], cands_[best])) best = k;
    const RatioCand first = cands_[best];
    const double range = up_[first.j] - lo_[first.j];
    if (cands_.size() == 1 || !std::isfinite(range) ||
        delta - first.aabs * range <= opts_.feas_tol) {
      enter = first;
    } else {
      // Slow path: the first breakpoint flips; heap-walk the rest.
      const auto heap_after = [&before](const RatioCand& x,
                                        const RatioCand& y) {
        return before(y, x);
      };
      flips_.push_back(first.j);
      delta -= first.aabs * range;
      cands_[best] = cands_.back();
      cands_.pop_back();
      std::make_heap(cands_.begin(), cands_.end(), heap_after);
      std::size_t heap_end = cands_.size();
      for (;;) {
        std::pop_heap(cands_.begin(), cands_.begin() + heap_end, heap_after);
        const RatioCand c = cands_[--heap_end];
        const double crange = up_[c.j] - lo_[c.j];
        if (heap_end == 0 || !std::isfinite(crange) ||
            delta - c.aabs * crange <= opts_.feas_tol) {
          enter = c;
          break;
        }
        delta -= c.aabs * crange;
        flips_.push_back(c.j);
      }
    }
  }
  const int q = enter.j;
  // flips_ is in ascending ratio order; ties with the entering ratio sit at
  // the tail. Drop them.
  const double tie_band = enter.ratio - 1e-12;
  while (!flips_.empty()) {
    const int j = flips_.back();
    if (std::abs(d_[j] / alpha_s_.val[j]) >= tie_band)
      flips_.pop_back();
    else
      break;
  }

  // 4. Apply the flips: combined primal correction with a single FTRAN.
  if (!flips_.empty()) {
    rhs_s_.clear();
    for (int j : flips_) {
      const double dx = state_[j] == kAtLower ? up_[j] - lo_[j]
                                              : lo_[j] - up_[j];
      state_[j] = state_[j] == kAtLower ? kAtUpper : kAtLower;
      const auto& idx = col_idx_[j];
      const auto& val = col_val_[j];
      for (std::size_t k = 0; k < idx.size(); ++k)
        rhs_s_.add(idx[k], val[k] * dx);
    }
    lu_.ftran(rhs_s_);
    for (int i : rhs_s_.idx)
      if (rhs_s_.val[i] != 0.0) xb_[i] -= rhs_s_.val[i];
    rhs_s_.clear();
    stats_.bound_flips += static_cast<long>(flips_.size());
  }

  // 5. FTRAN of the entering column; pivot element w[r] (== alpha_q up to
  // roundoff).
  w_s_.clear();
  {
    const auto& idx = col_idx_[q];
    const auto& val = col_val_[q];
    for (std::size_t k = 0; k < idx.size(); ++k) w_s_.add(idx[k], val[k]);
  }
  lu_.ftran(w_s_);
  const double wr = w_s_.val[r];
  if (std::abs(wr) < opts_.pivot_tol) {
    // Numerical disagreement with the pricing row: refactorise and let the
    // caller retry this iteration.
    refactorize_sparse();
    return true;
  }

  // 6. Dual step over the pricing pattern only.
  const double mu = d_[q] / wr;
  if (std::abs(d_[q]) <= opts_.dual_tol) ++stats_.degenerate_pivots;
  for (int j : alpha_s_.idx) {
    if (state_[j] == kBasic || j == q) continue;
    const double a = alpha_s_.val[j];
    if (a != 0.0) d_[j] -= mu * a;
  }

  // 7. Primal step: drive x_B[r] exactly to its violated bound.
  const double target = above ? up_[leave] : lo_[leave];
  const double t = (xb_[r] - target) / wr;
  const double xq_old = nonbasic_value(q);
  for (int i : w_s_.idx) {
    if (i != r && w_s_.val[i] != 0.0) xb_[i] -= t * w_s_.val[i];
  }
  xb_[r] = xq_old + t;

  // 8. Devex weight update (reference framework reset on overflow).
  {
    const double gr = gamma_[r];
    const double wr2 = wr * wr;
    double gmax = 0.0;
    for (int i : w_s_.idx) {
      if (i == r) continue;
      const double wi = w_s_.val[i];
      if (wi == 0.0) continue;
      const double cand = (wi * wi / wr2) * gr;
      if (cand > gamma_[i]) gamma_[i] = cand;
      if (gamma_[i] > gmax) gmax = gamma_[i];
    }
    gamma_[r] = std::max(gr / wr2, 1.0);
    if (gamma_[r] > gmax) gmax = gamma_[r];
    if (gmax > kDevexResetThreshold) gamma_.assign(m_, 1.0);
  }

  // 9. Basis change: product-form eta append + bookkeeping.
  lu_.update(r, w_s_);
  basic_[r] = q;
  basic_pos_[q] = r;
  state_[q] = kBasic;
  d_[q] = 0.0;
  basic_pos_[leave] = -1;
  state_[leave] = above ? kAtUpper : kAtLower;
  d_[leave] = -mu;
  ++stats_.pivots;

  if (++pivots_since_refactor_ >= opts_.refactor_every) refactorize_sparse();
  return true;
}

// ---------------------------------------------------------------------------
// Dense oracle path (the original implementation, kept for differential
// testing against the sparse kernel).
// ---------------------------------------------------------------------------

void DualSimplex::recompute_x_basic() {
  // r = b - sum over nonbasic of A_j x_j; xb = binv * r.
  std::vector<double> r = b_;
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic) continue;
    const double xj = nonbasic_value(j);
    BSIO_CHECK_MSG(std::isfinite(xj), "nonbasic variable at infinite bound");
    if (xj == 0.0) continue;
    const auto& idx = col_idx_[j];
    const auto& val = col_val_[j];
    for (std::size_t k = 0; k < idx.size(); ++k) r[idx[k]] -= val[k] * xj;
  }
  for (int i = 0; i < m_; ++i) {
    const double* row = binv_.data() + static_cast<std::size_t>(i) * m_;
    double s = 0.0;
    for (int k = 0; k < m_; ++k) s += row[k] * r[k];
    xb_[i] = s;
  }
  x_dirty_ = false;
}

void DualSimplex::recompute_duals() {
  // y^T = c_B^T B^{-1}; d_j = c_j - y^T A_j.
  std::vector<double> y(m_, 0.0);
  for (int i = 0; i < m_; ++i) {
    const double cb = cost_[basic_[i]];
    if (cb == 0.0) continue;
    const double* row = binv_.data() + static_cast<std::size_t>(i) * m_;
    for (int k = 0; k < m_; ++k) y[k] += cb * row[k];
  }
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic) {
      d_[j] = 0.0;
      continue;
    }
    double s = 0.0;
    const auto& idx = col_idx_[j];
    const auto& val = col_val_[j];
    for (std::size_t k = 0; k < idx.size(); ++k) s += y[idx[k]] * val[k];
    d_[j] = cost_[j] - s;
  }
}

void DualSimplex::refactorize_dense() {
  // Gauss-Jordan inversion of the basis matrix with partial pivoting.
  const std::size_t mm = static_cast<std::size_t>(m_);
  std::vector<double> a(mm * mm, 0.0);  // basis matrix, row-major
  for (int c = 0; c < m_; ++c) {
    const int j = basic_[c];
    const auto& idx = col_idx_[j];
    const auto& val = col_val_[j];
    for (std::size_t k = 0; k < idx.size(); ++k)
      a[static_cast<std::size_t>(idx[k]) * mm + c] = val[k];
  }
  std::vector<double>& inv = binv_;
  std::fill(inv.begin(), inv.end(), 0.0);
  for (int i = 0; i < m_; ++i) inv[static_cast<std::size_t>(i) * mm + i] = 1.0;

  for (int col = 0; col < m_; ++col) {
    int piv = col;
    double best = std::abs(a[static_cast<std::size_t>(col) * mm + col]);
    for (int i = col + 1; i < m_; ++i) {
      double v = std::abs(a[static_cast<std::size_t>(i) * mm + col]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best < 1e-12) {
      // Accumulated roundoff degraded the basis beyond repair. Recover by
      // restarting from the all-slack basis (always dual feasible here);
      // the caller's solve loop re-optimises from scratch.
      reset_to_slack_basis();
      return;
    }
    if (piv != col) {
      for (int k = 0; k < m_; ++k) {
        std::swap(a[static_cast<std::size_t>(piv) * mm + k],
                  a[static_cast<std::size_t>(col) * mm + k]);
        std::swap(inv[static_cast<std::size_t>(piv) * mm + k],
                  inv[static_cast<std::size_t>(col) * mm + k]);
      }
    }
    const double p = a[static_cast<std::size_t>(col) * mm + col];
    const double ip = 1.0 / p;
    for (int k = 0; k < m_; ++k) {
      a[static_cast<std::size_t>(col) * mm + k] *= ip;
      inv[static_cast<std::size_t>(col) * mm + k] *= ip;
    }
    for (int i = 0; i < m_; ++i) {
      if (i == col) continue;
      const double f = a[static_cast<std::size_t>(i) * mm + col];
      if (f == 0.0) continue;
      for (int k = 0; k < m_; ++k) {
        a[static_cast<std::size_t>(i) * mm + k] -=
            f * a[static_cast<std::size_t>(col) * mm + k];
        inv[static_cast<std::size_t>(i) * mm + k] -=
            f * inv[static_cast<std::size_t>(col) * mm + k];
      }
    }
  }
  ++stats_.factorizations;
  pivots_since_refactor_ = 0;
  recompute_duals();
  restore_dual_feasible_sides();
  recompute_x_basic();
}

double DualSimplex::col_dot_row(int col, const std::vector<double>& row) const {
  const auto& idx = col_idx_[col];
  const auto& val = col_val_[col];
  double s = 0.0;
  for (std::size_t k = 0; k < idx.size(); ++k) s += row[idx[k]] * val[k];
  return s;
}

void DualSimplex::ftran_dense(int col, std::vector<double>& out) const {
  out.assign(m_, 0.0);
  const auto& idx = col_idx_[col];
  const auto& val = col_val_[col];
  for (int i = 0; i < m_; ++i) {
    const double* row = binv_.data() + static_cast<std::size_t>(i) * m_;
    double s = 0.0;
    for (std::size_t k = 0; k < idx.size(); ++k) s += row[idx[k]] * val[k];
    out[i] = s;
  }
}

bool DualSimplex::pivot_step_dense() {
  if (x_dirty_) recompute_x_basic();

  // 1. Leaving row: most violated basic bound.
  int r = -1;
  double worst = opts_.feas_tol;
  bool above = false;  // true: x_B[r] > upper
  for (int i = 0; i < m_; ++i) {
    const int v = basic_[i];
    if (xb_[i] < lo_[v] - opts_.feas_tol) {
      double viol = lo_[v] - xb_[i];
      if (viol > worst) {
        worst = viol;
        r = i;
        above = false;
      }
    } else if (xb_[i] > up_[v] + opts_.feas_tol) {
      double viol = xb_[i] - up_[v];
      if (viol > worst) {
        worst = viol;
        r = i;
        above = true;
      }
    }
  }
  if (r < 0) {
    result_status_ = SolveStatus::kOptimal;
    return false;
  }

  // 2. rho = e_r^T B^{-1}; alpha_j = rho . A_j.
  const double* brow = binv_.data() + static_cast<std::size_t>(r) * m_;
  rho_.assign(brow, brow + m_);
  ++stats_.pricing_passes;

  // 3. Dual ratio test. mu = d_q / alpha_q; leaving-above wants mu >= 0,
  // leaving-below wants mu <= 0; pick smallest |mu|, then (Harris-style)
  // the largest |alpha| within a relative band of the minimum.
  std::vector<double> alpha(total_, 0.0);
  double best_abs_mu = kInf;
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic) continue;
    const double a = col_dot_row(j, rho_);
    alpha[j] = a;
    if (std::abs(a) < opts_.pivot_tol) continue;
    const bool at_lower = state_[j] == kAtLower;
    bool eligible;
    if (above)
      eligible = (at_lower && a > 0.0) || (!at_lower && a < 0.0);
    else
      eligible = (at_lower && a < 0.0) || (!at_lower && a > 0.0);
    if (!eligible) continue;
    // Fixed variables (lo == up) cannot re-enter usefully.
    if (lo_[j] == up_[j]) continue;
    const double abs_mu = std::abs(d_[j] / a);
    best_abs_mu = std::min(best_abs_mu, abs_mu);
  }
  if (best_abs_mu == kInf) {
    result_status_ = SolveStatus::kInfeasible;
    return false;
  }
  int q = -1;
  double best_pivot = 0.0;
  const double band = best_abs_mu * (1.0 + 1e-7) + 1e-10;
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic) continue;
    const double a = alpha[j];
    if (std::abs(a) < opts_.pivot_tol) continue;
    if (lo_[j] == up_[j]) continue;
    const bool at_lower = state_[j] == kAtLower;
    bool eligible;
    if (above)
      eligible = (at_lower && a > 0.0) || (!at_lower && a < 0.0);
    else
      eligible = (at_lower && a < 0.0) || (!at_lower && a > 0.0);
    if (!eligible) continue;
    if (std::abs(d_[j] / a) <= band && std::abs(a) > best_pivot) {
      best_pivot = std::abs(a);
      q = j;
    }
  }
  BSIO_CHECK(q >= 0);

  // 4. w = B^{-1} A_q; pivot element is w[r] (== alpha[q] up to roundoff).
  ftran_dense(q, w_);
  if (std::abs(w_[r]) < opts_.pivot_tol) {
    // Numerical disagreement with the row computation: refactorise and let
    // the caller retry this iteration.
    refactorize_dense();
    return true;
  }

  // 5. Primal step: drive x_B[r] exactly to its violated bound.
  const int leave = basic_[r];
  const double target = above ? up_[leave] : lo_[leave];
  const double t = (xb_[r] - target) / w_[r];
  const double xq_old = state_[q] == kAtLower ? lo_[q] : up_[q];

  // 6. Dual step.
  const double mu = d_[q] / w_[r];
  if (std::abs(d_[q]) <= opts_.dual_tol) ++stats_.degenerate_pivots;
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic || j == q) continue;
    if (alpha[j] != 0.0) d_[j] -= mu * alpha[j];
  }
  d_[leave] = -mu;
  d_[q] = 0.0;

  // 7. Primal update.
  for (int i = 0; i < m_; ++i)
    if (i != r) xb_[i] -= t * w_[i];
  xb_[r] = xq_old + t;

  // 8. Basis inverse product-form update.
  {
    double* prow = binv_.data() + static_cast<std::size_t>(r) * m_;
    const double ip = 1.0 / w_[r];
    for (int k = 0; k < m_; ++k) prow[k] *= ip;
    for (int i = 0; i < m_; ++i) {
      if (i == r || w_[i] == 0.0) continue;
      double* irow = binv_.data() + static_cast<std::size_t>(i) * m_;
      const double f = w_[i];
      for (int k = 0; k < m_; ++k) irow[k] -= f * prow[k];
    }
  }

  // 9. Bookkeeping.
  basic_[r] = q;
  basic_pos_[q] = r;
  state_[q] = kBasic;
  basic_pos_[leave] = -1;
  state_[leave] = above ? kAtUpper : kAtLower;
  ++stats_.pivots;

  if (++pivots_since_refactor_ >= opts_.refactor_every) refactorize_dense();
  return true;
}

// ---------------------------------------------------------------------------

SolveResult DualSimplex::solve() {
  stats_ = SolverStats{};
  // The basis carried into this solve (factorised at construction or by a
  // previous call) counts toward this solve's peak fill-in.
  if (!opts_.use_dense_basis && lu_.valid())
    stats_.factor_fill_nnz = lu_.fill_nnz();
  SolveResult res;
  if (perturb_active_ && !duals_perturbed_) {
    // Re-arm the perturbation the previous solve's cleanup pass removed.
    duals_perturbed_ = true;
    recompute_duals_sparse(pcost_);
  }
  restore_dual_feasible_sides();
  if (opts_.use_dense_basis) {
    if (x_dirty_) recompute_x_basic();
  } else {
    if (x_dirty_)
      recompute_x_basic_sparse();
    else if (pending_)
      apply_pending_bound_deltas();
  }
  int iter = 0;
  bool finished = false;
  WallTimer timer;
  while (iter < opts_.max_iterations) {
    ++iter;
    if (opts_.time_limit_seconds > 0.0 && (iter & 7) == 0 &&
        timer.elapsed_seconds() > opts_.time_limit_seconds)
      break;
    const bool more =
        opts_.use_dense_basis ? pivot_step_dense() : pivot_step_sparse();
    if (!more) {
      if (result_status_ == SolveStatus::kOptimal && duals_perturbed_) {
        // Perturbed problem solved: drop the perturbation and re-optimise
        // against the true costs so the reported optimum is exact.
        duals_perturbed_ = false;
        recompute_duals_sparse(cost_);
        restore_dual_feasible_sides();
        if (pending_) apply_pending_bound_deltas();
        continue;
      }
      finished = true;
      break;
    }
  }
  res.iterations = iter;
  res.status = finished ? result_status_ : SolveStatus::kIterLimit;
  if (res.status == SolveStatus::kOptimal) {
    double obj = 0.0;
    for (int v = 0; v < n_; ++v) obj += cost_[v] * value(v);
    res.objective = obj;
  }
  res.stats = stats_;
  return res;
}

}  // namespace bsio::lp
