#include "lp/simplex.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/timer.h"

namespace bsio::lp {

DualSimplex::DualSimplex(const Model& model, const SimplexOptions& opts)
    : model_(model), opts_(opts) {
  n_ = model.num_vars();
  m_ = model.num_rows();
  total_ = n_ + m_;
  if (opts_.refactor_every <= 0) {
    // Refactorisation costs O(m^3), a pivot update O(m^2): amortise the
    // refactorisation to at most ~one pivot's worth of work, with a floor
    // that keeps small models numerically fresh.
    opts_.refactor_every = std::max(64, m_);
  }
  build_columns(model);
  reset_to_slack_basis();
}

void DualSimplex::build_columns(const Model& model) {
  col_idx_.assign(total_, {});
  col_val_.assign(total_, {});
  cost_.assign(total_, 0.0);
  lo_.assign(total_, 0.0);
  up_.assign(total_, 0.0);
  b_.assign(m_, 0.0);

  for (int v = 0; v < n_; ++v) {
    cost_[v] = model.cost(v);
    lo_[v] = model.lower(v);
    up_[v] = model.upper(v);
    BSIO_CHECK_MSG(std::isfinite(lo_[v]) || std::isfinite(up_[v]),
                   "free structural variables are not supported");
  }
  for (int r = 0; r < m_; ++r) {
    b_[r] = model.rhs(r);
    for (const auto& e : model.row(r)) {
      if (e.coef == 0.0) continue;
      col_idx_[e.var].push_back(r);
      col_val_[e.var].push_back(e.coef);
    }
    const int s = n_ + r;
    col_idx_[s].push_back(r);
    col_val_[s].push_back(1.0);
    switch (model.sense(r)) {
      case Sense::kLe:
        lo_[s] = 0.0;
        up_[s] = kInf;
        break;
      case Sense::kGe:
        lo_[s] = -kInf;
        up_[s] = 0.0;
        break;
      case Sense::kEq:
        lo_[s] = up_[s] = 0.0;
        break;
    }
  }
}

void DualSimplex::reset_to_slack_basis() {
  basic_.resize(m_);
  basic_pos_.assign(total_, -1);
  state_.assign(total_, kAtLower);
  for (int r = 0; r < m_; ++r) {
    basic_[r] = n_ + r;
    basic_pos_[n_ + r] = r;
    state_[n_ + r] = kBasic;
  }
  for (int v = 0; v < n_; ++v) {
    // Park at the dual-feasible bound: cost >= 0 wants the lower bound.
    bool prefer_lower = cost_[v] >= 0.0;
    if (prefer_lower && !std::isfinite(lo_[v])) prefer_lower = false;
    if (!prefer_lower && !std::isfinite(up_[v])) prefer_lower = true;
    state_[v] = prefer_lower ? kAtLower : kAtUpper;
  }
  binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
  for (int r = 0; r < m_; ++r) binv_[static_cast<std::size_t>(r) * m_ + r] = 1.0;
  // Slack basis, slack costs zero: y = 0, d_j = c_j.
  d_ = cost_;
  xb_.assign(m_, 0.0);
  x_dirty_ = true;
  pivots_since_refactor_ = 0;
  rho_.assign(m_, 0.0);
  w_.assign(m_, 0.0);
}

double DualSimplex::value(int var) const {
  BSIO_DCHECK(var >= 0 && var < n_);
  switch (state_[var]) {
    case kBasic:
      return xb_[basic_pos_[var]];
    case kAtLower:
      return lo_[var];
    default:
      return up_[var];
  }
}

std::vector<double> DualSimplex::values() const {
  std::vector<double> x(n_);
  for (int v = 0; v < n_; ++v) x[v] = value(v);
  return x;
}

void DualSimplex::set_bounds(int var, double lo, double up) {
  BSIO_CHECK(var >= 0 && var < n_);
  BSIO_CHECK(lo <= up);
  lo_[var] = lo;
  up_[var] = up;
  // A nonbasic variable keeps its side; its value snaps to the new bound,
  // which leaves reduced costs (hence dual feasibility) untouched.
  x_dirty_ = true;
}

void DualSimplex::recompute_x_basic() {
  // r = b - sum over nonbasic of A_j x_j; xb = binv * r.
  std::vector<double> r = b_;
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic) continue;
    const double xj = state_[j] == kAtLower ? lo_[j] : up_[j];
    BSIO_CHECK_MSG(std::isfinite(xj), "nonbasic variable at infinite bound");
    if (xj == 0.0) continue;
    const auto& idx = col_idx_[j];
    const auto& val = col_val_[j];
    for (std::size_t k = 0; k < idx.size(); ++k) r[idx[k]] -= val[k] * xj;
  }
  for (int i = 0; i < m_; ++i) {
    const double* row = binv_.data() + static_cast<std::size_t>(i) * m_;
    double s = 0.0;
    for (int k = 0; k < m_; ++k) s += row[k] * r[k];
    xb_[i] = s;
  }
  x_dirty_ = false;
}

void DualSimplex::recompute_duals() {
  // y^T = c_B^T B^{-1}; d_j = c_j - y^T A_j.
  std::vector<double> y(m_, 0.0);
  for (int i = 0; i < m_; ++i) {
    const double cb = cost_[basic_[i]];
    if (cb == 0.0) continue;
    const double* row = binv_.data() + static_cast<std::size_t>(i) * m_;
    for (int k = 0; k < m_; ++k) y[k] += cb * row[k];
  }
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic) {
      d_[j] = 0.0;
      continue;
    }
    double s = 0.0;
    const auto& idx = col_idx_[j];
    const auto& val = col_val_[j];
    for (std::size_t k = 0; k < idx.size(); ++k) s += y[idx[k]] * val[k];
    d_[j] = cost_[j] - s;
  }
}

void DualSimplex::refactorize() {
  // Gauss-Jordan inversion of the basis matrix with partial pivoting.
  const std::size_t mm = static_cast<std::size_t>(m_);
  std::vector<double> a(mm * mm, 0.0);  // basis matrix, row-major
  for (int c = 0; c < m_; ++c) {
    const int j = basic_[c];
    const auto& idx = col_idx_[j];
    const auto& val = col_val_[j];
    for (std::size_t k = 0; k < idx.size(); ++k)
      a[static_cast<std::size_t>(idx[k]) * mm + c] = val[k];
  }
  std::vector<double>& inv = binv_;
  std::fill(inv.begin(), inv.end(), 0.0);
  for (int i = 0; i < m_; ++i) inv[static_cast<std::size_t>(i) * mm + i] = 1.0;

  for (int col = 0; col < m_; ++col) {
    int piv = col;
    double best = std::abs(a[static_cast<std::size_t>(col) * mm + col]);
    for (int i = col + 1; i < m_; ++i) {
      double v = std::abs(a[static_cast<std::size_t>(i) * mm + col]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best < 1e-12) {
      // Accumulated roundoff degraded the basis beyond repair. Recover by
      // restarting from the all-slack basis (always dual feasible here);
      // the caller's solve loop re-optimises from scratch.
      reset_to_slack_basis();
      return;
    }
    if (piv != col) {
      for (int k = 0; k < m_; ++k) {
        std::swap(a[static_cast<std::size_t>(piv) * mm + k],
                  a[static_cast<std::size_t>(col) * mm + k]);
        std::swap(inv[static_cast<std::size_t>(piv) * mm + k],
                  inv[static_cast<std::size_t>(col) * mm + k]);
      }
    }
    const double p = a[static_cast<std::size_t>(col) * mm + col];
    const double ip = 1.0 / p;
    for (int k = 0; k < m_; ++k) {
      a[static_cast<std::size_t>(col) * mm + k] *= ip;
      inv[static_cast<std::size_t>(col) * mm + k] *= ip;
    }
    for (int i = 0; i < m_; ++i) {
      if (i == col) continue;
      const double f = a[static_cast<std::size_t>(i) * mm + col];
      if (f == 0.0) continue;
      for (int k = 0; k < m_; ++k) {
        a[static_cast<std::size_t>(i) * mm + k] -=
            f * a[static_cast<std::size_t>(col) * mm + k];
        inv[static_cast<std::size_t>(i) * mm + k] -=
            f * inv[static_cast<std::size_t>(col) * mm + k];
      }
    }
  }
  pivots_since_refactor_ = 0;
  recompute_duals();
  restore_dual_feasible_sides();
  recompute_x_basic();
}

double DualSimplex::col_dot_row(int col, const std::vector<double>& row) const {
  const auto& idx = col_idx_[col];
  const auto& val = col_val_[col];
  double s = 0.0;
  for (std::size_t k = 0; k < idx.size(); ++k) s += row[idx[k]] * val[k];
  return s;
}

void DualSimplex::ftran(int col, std::vector<double>& out) const {
  out.assign(m_, 0.0);
  const auto& idx = col_idx_[col];
  const auto& val = col_val_[col];
  for (int i = 0; i < m_; ++i) {
    const double* row = binv_.data() + static_cast<std::size_t>(i) * m_;
    double s = 0.0;
    for (std::size_t k = 0; k < idx.size(); ++k) s += row[idx[k]] * val[k];
    out[i] = s;
  }
}

bool DualSimplex::pivot_step() {
  if (x_dirty_) recompute_x_basic();

  // 1. Leaving row: most violated basic bound.
  int r = -1;
  double worst = opts_.feas_tol;
  bool above = false;  // true: x_B[r] > upper
  for (int i = 0; i < m_; ++i) {
    const int v = basic_[i];
    if (xb_[i] < lo_[v] - opts_.feas_tol) {
      double viol = lo_[v] - xb_[i];
      if (viol > worst) {
        worst = viol;
        r = i;
        above = false;
      }
    } else if (xb_[i] > up_[v] + opts_.feas_tol) {
      double viol = xb_[i] - up_[v];
      if (viol > worst) {
        worst = viol;
        r = i;
        above = true;
      }
    }
  }
  if (r < 0) {
    result_status_ = SolveStatus::kOptimal;
    return false;
  }

  // 2. rho = e_r^T B^{-1}; alpha_j = rho . A_j.
  const double* brow = binv_.data() + static_cast<std::size_t>(r) * m_;
  rho_.assign(brow, brow + m_);

  // 3. Dual ratio test. mu = d_q / alpha_q; leaving-above wants mu >= 0,
  // leaving-below wants mu <= 0; pick smallest |mu|, then (Harris-style)
  // the largest |alpha| within a relative band of the minimum.
  std::vector<double> alpha(total_, 0.0);
  double best_abs_mu = kInf;
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic) continue;
    const double a = col_dot_row(j, rho_);
    alpha[j] = a;
    if (std::abs(a) < opts_.pivot_tol) continue;
    const bool at_lower = state_[j] == kAtLower;
    bool eligible;
    if (above)
      eligible = (at_lower && a > 0.0) || (!at_lower && a < 0.0);
    else
      eligible = (at_lower && a < 0.0) || (!at_lower && a > 0.0);
    if (!eligible) continue;
    // Fixed variables (lo == up) cannot re-enter usefully.
    if (lo_[j] == up_[j]) continue;
    const double abs_mu = std::abs(d_[j] / a);
    best_abs_mu = std::min(best_abs_mu, abs_mu);
  }
  if (best_abs_mu == kInf) {
    result_status_ = SolveStatus::kInfeasible;
    return false;
  }
  int q = -1;
  double best_pivot = 0.0;
  const double band = best_abs_mu * (1.0 + 1e-7) + 1e-10;
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic) continue;
    const double a = alpha[j];
    if (std::abs(a) < opts_.pivot_tol) continue;
    if (lo_[j] == up_[j]) continue;
    const bool at_lower = state_[j] == kAtLower;
    bool eligible;
    if (above)
      eligible = (at_lower && a > 0.0) || (!at_lower && a < 0.0);
    else
      eligible = (at_lower && a < 0.0) || (!at_lower && a > 0.0);
    if (!eligible) continue;
    if (std::abs(d_[j] / a) <= band && std::abs(a) > best_pivot) {
      best_pivot = std::abs(a);
      q = j;
    }
  }
  BSIO_CHECK(q >= 0);

  // 4. w = B^{-1} A_q; pivot element is w[r] (== alpha[q] up to roundoff).
  ftran(q, w_);
  if (std::abs(w_[r]) < opts_.pivot_tol) {
    // Numerical disagreement with the row computation: refactorise and let
    // the caller retry this iteration.
    refactorize();
    return true;
  }

  // 5. Primal step: drive x_B[r] exactly to its violated bound.
  const int leave = basic_[r];
  const double target = above ? up_[leave] : lo_[leave];
  const double t = (xb_[r] - target) / w_[r];
  const double xq_old = state_[q] == kAtLower ? lo_[q] : up_[q];

  // 6. Dual step.
  const double mu = d_[q] / w_[r];
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic || j == q) continue;
    if (alpha[j] != 0.0) d_[j] -= mu * alpha[j];
  }
  d_[leave] = -mu;
  d_[q] = 0.0;

  // 7. Primal update.
  for (int i = 0; i < m_; ++i)
    if (i != r) xb_[i] -= t * w_[i];
  xb_[r] = xq_old + t;

  // 8. Basis inverse product-form update.
  {
    double* prow = binv_.data() + static_cast<std::size_t>(r) * m_;
    const double ip = 1.0 / w_[r];
    for (int k = 0; k < m_; ++k) prow[k] *= ip;
    for (int i = 0; i < m_; ++i) {
      if (i == r || w_[i] == 0.0) continue;
      double* irow = binv_.data() + static_cast<std::size_t>(i) * m_;
      const double f = w_[i];
      for (int k = 0; k < m_; ++k) irow[k] -= f * prow[k];
    }
  }

  // 9. Bookkeeping.
  basic_[r] = q;
  basic_pos_[q] = r;
  state_[q] = kBasic;
  basic_pos_[leave] = -1;
  state_[leave] = above ? kAtUpper : kAtLower;

  if (++pivots_since_refactor_ >= opts_.refactor_every) refactorize();
  return true;
}

void DualSimplex::restore_dual_feasible_sides() {
  // After bound relaxations (B&B backtracking) a nonbasic variable can sit
  // on the side its reduced cost forbids; flip it to the other bound, which
  // restores dual feasibility without touching the basis.
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == kBasic || lo_[j] == up_[j]) continue;
    if (state_[j] == kAtLower && d_[j] < -opts_.dual_tol &&
        std::isfinite(up_[j])) {
      state_[j] = kAtUpper;
      x_dirty_ = true;
    } else if (state_[j] == kAtUpper && d_[j] > opts_.dual_tol &&
               std::isfinite(lo_[j])) {
      state_[j] = kAtLower;
      x_dirty_ = true;
    }
  }
}

SolveResult DualSimplex::solve() {
  SolveResult res;
  restore_dual_feasible_sides();
  if (x_dirty_) recompute_x_basic();
  int iter = 0;
  bool finished = false;
  WallTimer timer;
  while (iter < opts_.max_iterations) {
    ++iter;
    if (opts_.time_limit_seconds > 0.0 && (iter & 7) == 0 &&
        timer.elapsed_seconds() > opts_.time_limit_seconds)
      break;
    if (!pivot_step()) {
      finished = true;
      break;
    }
  }
  res.iterations = iter;
  res.status = finished ? result_status_ : SolveStatus::kIterLimit;
  if (res.status == SolveStatus::kOptimal) {
    double obj = 0.0;
    for (int v = 0; v < n_; ++v) obj += cost_[v] * value(v);
    res.objective = obj;
  }
  return res;
}

}  // namespace bsio::lp
