// Sparse LU factorisation of a simplex basis with product-form (eta-file)
// updates — the kernel behind the revised dual simplex.
//
// Factorisation is left-looking Gilbert-Peierls: columns are eliminated in
// ascending-nonzero-count order (static approximate-Markowitz ordering) and
// each column's sparse triangular solve walks only the symbolic reach of its
// pattern, so the cost is proportional to arithmetic actually performed —
// not to m^2. Within a column the pivot row is chosen Markowitz-style: among
// rows whose magnitude is within a threshold of the column maximum, the one
// with the fewest basis-matrix nonzeros wins (ties by row id, keeping the
// factorisation deterministic).
//
// Between refactorisations, basis changes append eta vectors (product form
// of the inverse). FTRAN applies L/U solves then the etas in order; BTRAN
// applies the eta transposes in reverse, then the transposed triangular
// solves. All four phases skip structurally zero entries, so the hypersparse
// right-hand sides of branch-and-bound re-optimisation (a single bound
// change) cost almost nothing.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace bsio::lp {

// Dense-valued vector with an explicit nonzero pattern. `idx` lists every
// position that may be nonzero (duplicates prevented by the `in` marks);
// values can still cancel to exact zero, so consumers test `val[i] != 0`.
struct IndexedVector {
  std::vector<double> val;
  std::vector<int> idx;
  std::vector<unsigned char> in;

  void resize(int n) {
    val.assign(n, 0.0);
    in.assign(n, 0);
    idx.clear();
  }
  void clear() {
    for (int i : idx) {
      val[i] = 0.0;
      in[i] = 0;
    }
    idx.clear();
  }
  void add(int i, double v) {
    if (!in[i]) {
      in[i] = 1;
      idx.push_back(i);
    }
    val[i] += v;
  }
  void set(int i, double v) {
    if (!in[i]) {
      in[i] = 1;
      idx.push_back(i);
    }
    val[i] = v;
  }
  void swap(IndexedVector& o) {
    val.swap(o.val);
    idx.swap(o.idx);
    in.swap(o.in);
  }
};

class BasisLu {
 public:
  // Factorises the m x m basis whose k-th column has the given sparse
  // (row, value) entries. Returns false when the matrix is numerically
  // singular (the caller falls back to a fresh basis). Clears the eta file.
  bool factorize(int m,
                 const std::vector<std::vector<std::pair<int, double>>>& cols);

  // Solves B x = b. On entry `x` holds b indexed by constraint row; on exit
  // it holds the solution indexed by basis position.
  void ftran(IndexedVector& x) const;

  // Solves B^T y = c. On entry `x` holds c indexed by basis position; on
  // exit it holds the solution indexed by constraint row.
  void btran(IndexedVector& x) const;

  // Product-form update after a pivot: basis position `r` is replaced by a
  // column whose FTRAN image is `w` (indexed by basis position, w[r] being
  // the pivot element).
  void update(int r, const IndexedVector& w);

  int eta_count() const { return static_cast<int>(eta_r_.size()); }
  // nnz(L) + nnz(U) of the current factorisation (diagonal included).
  long fill_nnz() const {
    return static_cast<long>(li_.size() + ui_.size()) + m_;
  }
  bool valid() const { return valid_; }

 private:
  int m_ = 0;
  bool valid_ = false;

  // L: unit lower triangular, stored column-wise by elimination step; row
  // indices are original constraint rows.
  std::vector<int> lp_, li_;
  std::vector<double> lx_;
  // U: upper triangular, stored column-wise by elimination step; row indices
  // are elimination steps (< the column's step). Diagonal kept separately.
  std::vector<int> up_, ui_;
  std::vector<double> ux_;
  std::vector<double> udiag_;
  // Row-wise mirrors for the sparse transposed solves in btran.
  std::vector<int> lrp_, lri_;
  std::vector<double> lrx_;
  std::vector<int> urp_, uri_;
  std::vector<double> urx_;

  std::vector<int> p_;        // elimination step -> pivot row
  std::vector<int> row_pos_;  // row -> elimination step (-1 while unpivoted)
  std::vector<int> q_;        // elimination step -> basis position

  // Eta file (product form of the inverse), flattened.
  std::vector<int> eta_r_;
  std::vector<double> eta_pivot_;
  std::vector<int> eta_start_, eta_idx_;
  std::vector<double> eta_val_;

  // Scratch (solves are logically const).
  mutable IndexedVector out_;
  mutable std::vector<double> step_val_;

  void build_row_mirrors();
};

}  // namespace bsio::lp
