// Linear program container.
//
// min c^T x   s.t.   a_i^T x {<=, >=, =} b_i,   lo <= x <= up
//
// Rows are entered in natural (row) form; finalize() builds the sparse
// column representation the simplex solver consumes (structural columns
// followed by one slack column per row).
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace bsio::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kLe, kGe, kEq };

struct RowEntry {
  int var;
  double coef;
};

class Model {
 public:
  // Returns the variable index.
  int add_var(double cost, double lo, double up);
  int add_binary(double cost) { return add_var(cost, 0.0, 1.0); }

  void add_row(Sense sense, double rhs, std::vector<RowEntry> entries);

  int num_vars() const { return static_cast<int>(cost_.size()); }
  int num_rows() const { return static_cast<int>(rhs_.size()); }

  double cost(int v) const { return cost_[v]; }
  double lower(int v) const { return lo_[v]; }
  double upper(int v) const { return up_[v]; }
  Sense sense(int r) const { return sense_[r]; }
  double rhs(int r) const { return rhs_[r]; }
  const std::vector<RowEntry>& row(int r) const { return rows_[r]; }

  // Evaluates a_r^T x for a candidate point (used by feasibility checks and
  // MIP rounding heuristics).
  double row_activity(int r, const std::vector<double>& x) const;

  // True if x satisfies all rows and bounds within tol.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  double objective_value(const std::vector<double>& x) const;

 private:
  std::vector<double> cost_, lo_, up_;
  std::vector<Sense> sense_;
  std::vector<double> rhs_;
  std::vector<std::vector<RowEntry>> rows_;
};

}  // namespace bsio::lp
