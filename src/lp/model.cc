#include "lp/model.h"

#include <cmath>

namespace bsio::lp {

int Model::add_var(double cost, double lo, double up) {
  BSIO_CHECK_MSG(lo <= up, "variable bounds crossed");
  cost_.push_back(cost);
  lo_.push_back(lo);
  up_.push_back(up);
  return static_cast<int>(cost_.size()) - 1;
}

void Model::add_row(Sense sense, double rhs, std::vector<RowEntry> entries) {
  for (const auto& e : entries)
    BSIO_CHECK_MSG(e.var >= 0 && e.var < num_vars(), "row references no var");
  sense_.push_back(sense);
  rhs_.push_back(rhs);
  rows_.push_back(std::move(entries));
}

double Model::row_activity(int r, const std::vector<double>& x) const {
  double a = 0.0;
  for (const auto& e : rows_[r]) a += e.coef * x[e.var];
  return a;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != num_vars()) return false;
  for (int v = 0; v < num_vars(); ++v)
    if (x[v] < lo_[v] - tol || x[v] > up_[v] + tol) return false;
  for (int r = 0; r < num_rows(); ++r) {
    double a = row_activity(r, x);
    switch (sense_[r]) {
      case Sense::kLe:
        if (a > rhs_[r] + tol) return false;
        break;
      case Sense::kGe:
        if (a < rhs_[r] - tol) return false;
        break;
      case Sense::kEq:
        if (std::abs(a - rhs_[r]) > tol) return false;
        break;
    }
  }
  return true;
}

double Model::objective_value(const std::vector<double>& x) const {
  double obj = 0.0;
  for (int v = 0; v < num_vars(); ++v) obj += cost_[v] * x[v];
  return obj;
}

}  // namespace bsio::lp
