// Ablation: BiPartition's probabilistic vertex weights (Eq. 25-26) vs
// plain compute-only weights in the level-2 partitioner. The probabilistic
// weights fold expected transfer cost into the balance constraint, so
// nodes that will do more staging receive less computation.

#include "bench_common.h"

#include "sched/bipartition.h"
#include "sched/driver.h"

int main() {
  using namespace bsio;
  using namespace bsio::bench;

  banner("Ablation — Eq. 25/26 probabilistic vertex weights",
         "100-task high/medium-overlap batches, 4 compute + 4 storage",
         "probabilistic weights match or beat plain compute weights, with "
         "the larger effect where transfer cost dominates (OSUMED, SAT)");

  Table t({"case", "probabilistic (s)", "plain (s)", "ratio"});
  for (const char* app : {"IMAGE", "SAT"}) {
    for (double ov : {0.85, 0.40}) {
      for (bool osumed : {false, true}) {
        wl::Workload w = app == std::string("IMAGE") ? image_workload(ov)
                                                     : sat_workload(ov);
        sim::ClusterConfig cluster =
            osumed ? sim::osumed_cluster(4, 4) : sim::xio_cluster(4, 4);

        sched::BiPartitionOptions prob, plain;
        prob.probabilistic_weights = true;
        plain.probabilistic_weights = false;
        sched::BiPartitionScheduler sp(prob), sl(plain);
        double tp = sched::run_batch(sp, w, cluster).batch_time;
        double tl = sched::run_batch(sl, w, cluster).batch_time;

        char label[64];
        std::snprintf(label, sizeof(label), "%s %.0f%% %s", app, ov * 100,
                      osumed ? "OSUMED" : "XIO");
        t.add_row({label, format_fixed(tp, 1), format_fixed(tl, 1),
                   format_fixed(tl / tp, 2)});
        std::fprintf(stderr, "  [%s] prob=%.1f plain=%.1f\n", label, tp, tl);
      }
    }
  }
  t.print("vertex-weight ablation");
  return 0;
}
