// Figure 3: batch execution time of the four schemes on the IMAGE
// application, (a) OSUMED storage cluster and (b) XIO storage cluster.
// 4 compute + 4 storage nodes, 100-task batches at high (85%), medium
// (40%) and low (0%) file overlap.

#include "bench_common.h"

int main() {
  using namespace bsio;
  using namespace bsio::bench;

  banner("Fig 3 — IMAGE batch execution time",
         "4 compute + 4 storage nodes, 100 tasks, overlap in {85, 40, 0}%",
         "IP <= BiPartition < JobDataPresent <= MinMin; the gap is largest "
         "at high overlap and shrinks as overlap falls; on the shared-uplink "
         "OSUMED system low-overlap times converge to the uplink bound");

  core::ExperimentOptions opts;
  opts.run_options.ip.allocation_mip.time_limit_seconds = 8.0;

  for (bool osumed : {true, false}) {
    std::vector<core::ExperimentCase> cases;
    for (double ov : {0.85, 0.40, 0.0}) {
      cases.push_back({overlap_label(ov), image_workload(ov),
                       osumed ? sim::osumed_cluster(4, 4)
                              : sim::xio_cluster(4, 4)});
    }
    auto results = core::run_experiment(cases, opts);
    const char* sys = osumed ? "(a) OSUMED storage" : "(b) XIO storage";
    core::batch_time_table(results, opts.algorithms)
        .print(std::string("Fig 3") + sys);
    core::transfer_table(results, opts.algorithms)
        .print(std::string("Fig 3") + sys + " — data movement");
  }
  return 0;
}
