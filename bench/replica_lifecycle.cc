// Replica lifecycle: background repair after fail-stop crashes and the
// durability-vs-makespan frontier of tiered replication (DESIGN.md §15).
//
// Two experiments on a 4 compute + 4 XIO storage cluster:
//
//  1. Repair gate — a read-only batch over a shared service catalogue
//     loses two compute nodes mid-run at replication factor 2. The
//     replica manager must restore
//     every file to its tier target before the run reports, at every
//     swept repair-bandwidth cap (the cap lengthens repair transfers but
//     must never strand the deficit).
//  2. Durability frontier — a service batch where 30% of the tasks WRITE
//     one of their inputs (version epochs, write-back), under one
//     mid-run crash, swept across replication factor 1 / 2 / 3. Reports
//     the makespan alongside the durability spend (repair bytes, flushes)
//     and the durability losses (stale reads of lost versions, files left
//     below target).
//
// Results land in BENCH_replica.json.
//
//   replica_lifecycle [--smoke] [--out <path>]
//
// --smoke shrinks both workloads for CI. Exit is non-zero if any repair-
// gate run finishes with a replica deficit, without creating any repair
// copies, or (full run only) if the frontier fails to order repair bytes
// monotonically in the replication factor.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "replica/replica.h"
#include "sched/driver.h"
#include "sched/minmin.h"
#include "service/catalog.h"
#include "sim/faults.h"

namespace {

using namespace bsio;

replica::ReplicaConfig rf_config(std::uint32_t rf, double cap) {
  replica::ReplicaConfig cfg;
  cfg.enabled = true;
  cfg.tiers = {{0.0, rf}};
  cfg.repair_bandwidth_cap = cap;
  return cfg;
}

struct GateRow {
  double cap_mb = 0.0;  // 0 = uncapped
  double makespan = 0.0;
  std::size_t replicas_created = 0;
  double repair_bytes = 0.0;
  double repair_seconds = 0.0;
  std::size_t deficit = 0;
};

struct FrontierRow {
  std::uint32_t rf = 0;
  double makespan = 0.0;
  std::size_t replicas_created = 0;
  std::size_t replicas_invalidated = 0;
  std::size_t home_flushes = 0;
  double repair_bytes = 0.0;
  std::size_t lost_versions = 0;
  std::size_t deficit = 0;
};

void write_json(const char* path, bool smoke,
                const std::vector<GateRow>& gate,
                const std::vector<FrontierRow>& frontier) {
  bench::JsonWriter j(path);
  j.begin_object();
  j.field("bench", "replica_lifecycle");
  j.begin_object("config");
  j.field("cluster", "4 compute + 4 XIO storage");
  j.field("gate_workload", "read-only service batch, 2 fail-stop crashes");
  j.field("frontier_workload",
          "service batch, write_fraction 0.3, 1 fail-stop crash");
  j.field("smoke", smoke);
  j.end_object();
  j.begin_array("repair_gate");
  for (const GateRow& r : gate) {
    j.begin_object();
    j.field("repair_cap_mb_per_s", r.cap_mb, 0);
    j.field("makespan_seconds", r.makespan, 2);
    j.field("replicas_created", r.replicas_created);
    j.field("repair_bytes", r.repair_bytes, 0);
    j.field("repair_seconds", r.repair_seconds, 2);
    j.field("replica_deficit", r.deficit);
    j.end_object();
  }
  j.end_array();
  j.begin_array("durability_frontier");
  for (const FrontierRow& r : frontier) {
    j.begin_object();
    j.field("replication_factor", static_cast<std::size_t>(r.rf));
    j.field("makespan_seconds", r.makespan, 2);
    j.field("replicas_created", r.replicas_created);
    j.field("replicas_invalidated", r.replicas_invalidated);
    j.field("home_flushes", r.home_flushes);
    j.field("repair_bytes", r.repair_bytes, 0);
    j.field("lost_versions", r.lost_versions);
    j.field("replica_deficit", r.deficit);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsio::bench;

  ParseArgs args(argc, argv);
  const bool smoke = args.has("--smoke");
  const char* out_path = args.value("--out", "BENCH_replica.json");
  args.reject_unknown("replica_lifecycle [--smoke] [--out <path>]");

  banner("Replica lifecycle — crash repair and the durability frontier",
         "4 compute + 4 XIO storage nodes; tiered replication targets with "
         "background repair on the shared timelines; version-epoch "
         "write-back for mutable files",
         "repair restores the tier target after fail-stop crashes at every "
         "bandwidth cap (tighter caps just take longer); raising the "
         "replication factor buys fewer lost versions at the price of "
         "repair bytes and a longer batch");

  const sim::ClusterConfig cluster = sim::xio_cluster(4, 4);
  sched::MinMinScheduler mm;
  bool gate_holds = true;

  service::SharedCatalogConfig ccfg;
  ccfg.num_files = smoke ? 32 : 96;
  ccfg.num_storage_nodes = cluster.num_storage_nodes;
  ccfg.mean_file_size_bytes = 50.0 * sim::kMB;
  const std::vector<wl::FileInfo> catalog =
      service::make_shared_catalog(ccfg);
  service::ServiceBatchConfig bcfg;
  bcfg.tasks_per_batch = smoke ? 16 : 48;
  bcfg.files_per_task = 3;

  // --- Experiment 1: repair restores the tier target after crashes. ---
  std::vector<GateRow> gate_rows;
  {
    const wl::Workload w = service::make_service_batch(catalog, bcfg, 11);
    // Stagger two fail-stops across the fault-free makespan.
    const double ref =
        sched::run_batch(mm, w, cluster, sched::BatchRunOptions{}).batch_time;
    sim::FaultConfig faults;
    faults.compute_crashes = {{0, 0.3 * ref}, {1, 0.6 * ref}};

    Table t({"repair cap (MB/s)", "makespan (s)", "repair copies",
             "repair MB", "repair (s)", "deficit"});
    const std::vector<double> caps =
        smoke ? std::vector<double>{0.0, 25.0}
              : std::vector<double>{0.0, 100.0, 50.0, 25.0};
    for (double cap_mb : caps) {
      sched::BatchRunOptions opts;
      opts.faults = faults;
      opts.replication = rf_config(2, cap_mb * sim::kMB);
      const auto r = sched::run_batch(mm, w, cluster, opts);
      GateRow row{cap_mb, r.batch_time, r.stats.replicas_created,
                  r.stats.repair_bytes, r.stats.repair_seconds,
                  r.replica_deficit};
      t.add_row({cap_mb > 0.0 ? format_fixed(cap_mb, 0) : "uncapped",
                 format_fixed(row.makespan, 1),
                 std::to_string(row.replicas_created),
                 format_fixed(row.repair_bytes / sim::kMB, 0),
                 format_fixed(row.repair_seconds, 1),
                 std::to_string(row.deficit)});
      std::fprintf(stderr, "  [gate cap=%.0f] %zu copies, deficit %zu%s\n",
                   cap_mb, row.replicas_created, row.deficit,
                   r.ok() ? "" : " FAILED");
      if (!r.ok() || row.deficit != 0 || row.replicas_created == 0) {
        std::fprintf(stderr,
                     "replica_lifecycle: repair failed to restore RF 2 at "
                     "cap %.0f MB/s (deficit %zu, %zu copies)\n",
                     cap_mb, row.deficit, row.replicas_created);
        gate_holds = false;
      }
      gate_rows.push_back(row);
    }
    t.print("Repair gate: RF 2, two fail-stop crashes, swept repair cap");
  }

  // --- Experiment 2: durability vs makespan across RF 1 / 2 / 3. ---
  std::vector<FrontierRow> frontier_rows;
  {
    service::ServiceBatchConfig wcfg = bcfg;
    wcfg.write_fraction = 0.3;
    const wl::Workload w = service::make_service_batch(catalog, wcfg, 17);
    const double ref =
        sched::run_batch(mm, w, cluster, sched::BatchRunOptions{}).batch_time;

    Table t({"RF", "makespan (s)", "repair copies", "invalidated",
             "flushes", "repair MB", "lost versions", "deficit"});
    for (std::uint32_t rf : {1u, 2u, 3u}) {
      sched::BatchRunOptions opts;
      opts.faults.compute_crashes = {{0, 0.4 * ref}};
      opts.replication = rf_config(rf, 50.0 * sim::kMB);
      const auto r = sched::run_batch(mm, w, cluster, opts);
      if (!r.ok()) {
        std::fprintf(stderr, "replica_lifecycle: frontier rf=%u failed: %s\n",
                     rf, r.error.c_str());
        gate_holds = false;
        continue;
      }
      FrontierRow row{rf,
                      r.batch_time,
                      r.stats.replicas_created,
                      r.stats.replicas_invalidated,
                      r.stats.home_flushes,
                      r.stats.repair_bytes,
                      r.stats.lost_versions,
                      r.replica_deficit};
      t.add_row({std::to_string(rf), format_fixed(row.makespan, 1),
                 std::to_string(row.replicas_created),
                 std::to_string(row.replicas_invalidated),
                 std::to_string(row.home_flushes),
                 format_fixed(row.repair_bytes / sim::kMB, 0),
                 std::to_string(row.lost_versions),
                 std::to_string(row.deficit)});
      std::fprintf(stderr,
                   "  [frontier rf=%u] %.1fs, %zu copies, %zu lost\n", rf,
                   row.makespan, row.replicas_created, row.lost_versions);
      frontier_rows.push_back(row);
    }
    t.print("Durability frontier: write-back batch under one crash");

    // Spending more on durability must show up as more repair traffic.
    if (!smoke)
      for (std::size_t i = 1; i < frontier_rows.size(); ++i)
        if (frontier_rows[i].repair_bytes <
            frontier_rows[i - 1].repair_bytes) {
          std::fprintf(stderr,
                       "replica_lifecycle: repair bytes not monotone in RF "
                       "(rf=%u: %.0f < rf=%u: %.0f)\n",
                       frontier_rows[i].rf, frontier_rows[i].repair_bytes,
                       frontier_rows[i - 1].rf,
                       frontier_rows[i - 1].repair_bytes);
          gate_holds = false;
        }
  }

  write_json(out_path, smoke, gate_rows, frontier_rows);
  std::printf("wrote %s (%zu + %zu rows)\n", out_path, gate_rows.size(),
              frontier_rows.size());
  return gate_holds ? 0 : 1;
}
