// Scale-out planning sweep: the ROADMAP's 1k-node / 100k-task / 1M-file
// regime, exercising the bucketed timelines, the holder-indexed cluster
// state, the bit-packed planner presence, the heap-based engine event core,
// and the streaming workload generator together.
//
// Runs MinMin (lazy, bounded staleness), JobDataPresent, and BiPartition
// across a grid of
// {8, 64, 256, 1024} compute nodes x {1k, 10k, 100k} tasks drawn from a
// 2M-file virtual universe (100k tasks x 8 files/task touch ~660k distinct
// files), recording planning wall-seconds, simulated makespan, and peak RSS
// per point into BENCH_scale.json. The IP scheduler stays node-capped: its
// MIP rows grow with nodes x tasks x files and the solve budget makes it a
// small-instance tool (see EXPERIMENTS.md for the cliff), so it runs only
// at the 8-node / 1k-task corner for reference.
//
//   scale_sweep [--smoke] [--out <path>] [--max-point-seconds <s>]
//               [--max-rss-mb <mb>] [--threads <t1,t2,...>]
//
// --smoke shrinks the grid for CI ({8, 64} nodes x 1k tasks, no IP);
// --max-point-seconds / --max-rss-mb turn the sweep into an acceptance
// gate: any point whose planning time or the process's peak RSS exceeds
// the ceiling fails the run. --threads re-runs every point at each listed
// work-stealing thread count and adds a speedup_vs_1t column per row (the
// first listed count is the baseline).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sched/bipartition.h"
#include "sched/driver.h"
#include "sched/ip_scheduler.h"
#include "sched/job_data_present.h"
#include "sched/minmin.h"
#include "sim/cluster.h"
#include "util/ws_runtime.h"
#include "workload/synthetic.h"

namespace {

using namespace bsio;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Row {
  std::string scheduler;
  std::size_t nodes = 0;
  std::size_t tasks = 0;
  std::size_t files = 0;  // distinct files the batch draws
  std::size_t threads = 0;
  double planning_seconds = 0.0;
  double wall_seconds = 0.0;  // planning + simulated execution
  double makespan_seconds = 0.0;
  double speedup_vs_1t = 1.0;  // vs the first --threads entry at this point
  double peak_rss_mb = 0.0;  // process high-water mark at row end
};

// "--threads 1,2,4" -> {1, 2, 4}; empty/absent -> {0} (the runtime default,
// no speedup comparison).
std::vector<std::size_t> parse_thread_grid(const char* arg) {
  std::vector<std::size_t> grid;
  std::string s = arg == nullptr ? "" : arg;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) {
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v <= 0) {
        std::fprintf(stderr, "scale_sweep: bad --threads entry '%s'\n",
                     tok.c_str());
        std::exit(2);
      }
      grid.push_back(static_cast<std::size_t>(v));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (grid.empty()) grid.push_back(0);
  return grid;
}

struct SchedulerSpec {
  std::string label;
  std::size_t max_nodes;  // skip larger points
  std::size_t max_tasks;
  std::unique_ptr<sched::Scheduler> (*make)();
};

// Refresh-cascade cap for MinMin's lazy heap. Unbounded, every commit's
// perturbation of the shared storage ports forces ~2k full-row refreshes
// per commit at 10k tasks (74 s at 10k x 64; hours at 100k) — with the cap
// the same point plans in 2.6 s and the makespan moves by under 0.2%.
constexpr std::size_t kMinMinStaleRetryBudget = 32;

std::unique_ptr<sched::Scheduler> make_minmin() {
  // Always the lazy-heap path: exact MinMin is O(T^2 N) and already
  // intractable at 10k tasks x 256 nodes.
  return std::make_unique<sched::MinMinScheduler>(0, kMinMinStaleRetryBudget);
}
std::unique_ptr<sched::Scheduler> make_jdp() {
  return std::make_unique<sched::JobDataPresentScheduler>();
}
std::unique_ptr<sched::Scheduler> make_bipartition() {
  return std::make_unique<sched::BiPartitionScheduler>();
}
std::unique_ptr<sched::Scheduler> make_ip() {
  sched::IpSchedulerOptions o = sched::IpScheduler::default_options();
  o.max_subbatch_tasks = 32;
  o.selection_mip.time_limit_seconds = 0.04;
  o.allocation_mip.time_limit_seconds = 0.04;
  o.selection_mip.stall_node_limit = 64;
  o.allocation_mip.stall_node_limit = 64;
  return std::make_unique<sched::IpScheduler>(o);
}

sim::ClusterConfig scale_cluster(std::size_t compute_nodes,
                                 std::size_t storage_nodes) {
  sim::ClusterConfig c;
  c.num_compute_nodes = compute_nodes;
  c.num_storage_nodes = storage_nodes;
  c.storage_disk_bw = 50.0 * sim::kMB;
  c.storage_net_bw = 500.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;
  c.local_disk_bw = 200.0 * sim::kMB;
  // Unlimited disks: the sweep measures planning scalability, not eviction
  // behaviour (fig5b covers that); capacity pressure at this scale would
  // make eviction policy the variable instead of the data structures.
  c.disk_capacity = sim::kUnlimited;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs args(argc, argv);
  const bool smoke = args.has("--smoke");
  const char* out_path = args.value("--out", "BENCH_scale.json");
  const double max_point_seconds = args.number("--max-point-seconds", 0.0);
  const double max_rss_mb = args.number("--max-rss-mb", 0.0);
  const std::vector<std::size_t> thread_grid =
      parse_thread_grid(args.value("--threads", ""));
  args.reject_unknown(
      "scale_sweep [--smoke] [--out <path>] [--max-point-seconds <s>] "
      "[--max-rss-mb <mb>] [--threads <t1,t2,...>]");

  const std::vector<std::size_t> node_grid =
      smoke ? std::vector<std::size_t>{8, 64}
            : std::vector<std::size_t>{8, 64, 256, 1024};
  const std::vector<std::size_t> task_grid =
      smoke ? std::vector<std::size_t>{1000}
            : std::vector<std::size_t>{1000, 10000, 100000};
  const std::size_t universe = 2'000'000;

  const std::vector<SchedulerSpec> specs = {
      {"MinMin", static_cast<std::size_t>(-1), static_cast<std::size_t>(-1),
       &make_minmin},
      {"JobDataPresent", static_cast<std::size_t>(-1),
       static_cast<std::size_t>(-1), &make_jdp},
      {"BiPartition", static_cast<std::size_t>(-1),
       static_cast<std::size_t>(-1), &make_bipartition},
      // Node-capped: IP's MIPs do not survive past small instances.
      {"IP", 8, 1000, &make_ip},
  };

  std::printf("scale_sweep: %zu-file universe%s, threads {", universe,
              smoke ? " (smoke)" : "");
  for (std::size_t t : thread_grid) std::printf(" %zu", t);
  std::printf(" }\n");
  std::printf("%-16s %6s %7s %8s %4s %12s %10s %12s %8s %10s\n", "scheduler",
              "nodes", "tasks", "files", "thr", "plan [s]", "wall [s]",
              "makespan [s]", "speedup", "rss [MB]");

  std::vector<Row> rows;
  bool ceilings_ok = true;
  for (std::size_t tasks : task_grid) {
    for (std::size_t nodes : node_grid) {
      const std::size_t storage_nodes = std::max<std::size_t>(4, nodes / 8);

      wl::StreamingSyntheticConfig wcfg;
      wcfg.num_tasks = tasks;
      wcfg.files_per_task = 8;
      wcfg.universe_files = universe;
      wcfg.zipf_s = 0.0;  // uniform: maximal distinct-file pressure
      wcfg.file_size_bytes = 50.0 * sim::kMB;
      wcfg.file_size_jitter = 0.25;
      wcfg.num_storage_nodes = storage_nodes;
      wcfg.seed = 7;
      const wl::Workload w = wl::make_synthetic_streaming(wcfg);

      const sim::ClusterConfig cluster = scale_cluster(nodes, storage_nodes);

      for (const auto& spec : specs) {
        if (nodes > spec.max_nodes || tasks > spec.max_tasks) continue;
        double base_planning = 0.0;
        for (std::size_t want_threads : thread_grid) {
          WsRuntime::set_global_threads(want_threads);
          auto scheduler = spec.make();
          const Clock::time_point t0 = Clock::now();
          const sched::BatchRunResult r =
              sched::run_batch(*scheduler, w, cluster);
          if (!r.ok()) {
            std::fprintf(stderr, "scale_sweep: %s at %zu nodes / %zu tasks "
                         "failed: %s\n",
                         spec.label.c_str(), nodes, tasks, r.error.c_str());
            return 1;
          }
          Row row;
          row.scheduler = spec.label;
          row.nodes = nodes;
          row.tasks = tasks;
          row.files = w.num_files();
          row.threads = r.planning_threads;
          row.planning_seconds = r.scheduling_seconds;
          row.wall_seconds = seconds_since(t0);
          row.makespan_seconds = r.batch_time;
          if (want_threads == thread_grid.front())
            base_planning = r.scheduling_seconds;
          row.speedup_vs_1t = r.scheduling_seconds > 0.0
                                  ? base_planning / r.scheduling_seconds
                                  : 1.0;
          row.peak_rss_mb = bench::peak_rss_mb();
          std::printf(
              "%-16s %6zu %7zu %8zu %4zu %12.3f %10.2f %12.1f %7.2fx %10.1f\n",
              row.scheduler.c_str(), row.nodes, row.tasks, row.files,
              row.threads, row.planning_seconds, row.wall_seconds,
              row.makespan_seconds, row.speedup_vs_1t, row.peak_rss_mb);
          std::fflush(stdout);
          if (max_point_seconds > 0.0 &&
              row.planning_seconds > max_point_seconds) {
            std::fprintf(stderr,
                         "scale_sweep: %s at %zu nodes / %zu tasks planned in "
                         "%.3f s, over the --max-point-seconds ceiling %.3f\n",
                         row.scheduler.c_str(), nodes, tasks,
                         row.planning_seconds, max_point_seconds);
            ceilings_ok = false;
          }
          if (max_rss_mb > 0.0 && row.peak_rss_mb > max_rss_mb) {
            std::fprintf(stderr,
                         "scale_sweep: peak RSS %.1f MB after %s at %zu nodes "
                         "/ %zu tasks, over the --max-rss-mb ceiling %.1f\n",
                         row.peak_rss_mb, row.scheduler.c_str(), nodes, tasks,
                         max_rss_mb);
            ceilings_ok = false;
          }
          rows.push_back(std::move(row));
        }
      }
    }
  }

  bench::JsonWriter j(out_path);
  j.begin_object();
  j.field("bench", "scale_sweep");
  j.begin_object("config");
  j.field("universe_files", universe);
  j.field("files_per_task", static_cast<std::size_t>(8));
  j.field("file_size_mb", 50.0, 0);
  j.field("minmin_stale_retry_budget", kMinMinStaleRetryBudget);
  j.field("smoke", smoke);
  j.end_object();
  j.field("peak_rss_mb", bench::peak_rss_mb(), 1);
  j.begin_array("results");
  for (const Row& r : rows) {
    j.begin_object();
    j.field("scheduler", r.scheduler);
    j.field("nodes", r.nodes);
    j.field("tasks", r.tasks);
    j.field("files", r.files);
    j.field("threads", r.threads);
    j.field("planning_seconds", r.planning_seconds, 3);
    j.field("speedup_vs_1t", r.speedup_vs_1t, 3);
    j.field("wall_seconds", r.wall_seconds, 2);
    j.field("makespan_seconds", r.makespan_seconds, 1);
    j.field("peak_rss_mb", r.peak_rss_mb, 1);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("\nwrote %s (%zu rows)\n", out_path, rows.size());

  return ceilings_ok ? 0 : 1;
}
