// Figure 4: batch execution time of the four schemes on the SAT
// application, (a) OSUMED storage cluster and (b) XIO storage cluster.
// 4 compute + 4 storage nodes, 100-task batches; high overlap tasks read
// ~8 x 50 MB chunks, medium/low ~14.

#include "bench_common.h"

int main() {
  using namespace bsio;
  using namespace bsio::bench;

  banner("Fig 4 — SAT batch execution time",
         "4 compute + 4 storage nodes, 100 tasks, overlap in {85, 40, 10}%",
         "same ordering as Fig 3 (proposed schemes win, biggest margin at "
         "high overlap); absolute times larger than IMAGE because SAT moves "
         "50 MB chunks");

  core::ExperimentOptions opts;
  opts.run_options.ip.allocation_mip.time_limit_seconds = 8.0;

  for (bool osumed : {true, false}) {
    std::vector<core::ExperimentCase> cases;
    for (double ov : {0.85, 0.40, 0.10}) {
      cases.push_back({overlap_label(ov), sat_workload(ov),
                       osumed ? sim::osumed_cluster(4, 4)
                              : sim::xio_cluster(4, 4)});
    }
    auto results = core::run_experiment(cases, opts);
    const char* sys = osumed ? "(a) OSUMED storage" : "(b) XIO storage";
    core::batch_time_table(results, opts.algorithms)
        .print(std::string("Fig 4") + sys);
    core::transfer_table(results, opts.algorithms)
        .print(std::string("Fig 4") + sys + " — data movement");
  }
  return 0;
}
