// Figure 5(b): batch execution time vs batch size under limited disk.
// 4 OSC compute nodes + 4 XIO storage nodes; high-overlap IMAGE batches of
// 500..4000 tasks; 40 GB disk per compute node. Aggregate data demand grows
// from ~40 GB (fits) to ~330 GB (double the 160 GB aggregate disk), so the
// base schemes start thrashing the caches. The IP scheme is excluded, as in
// the paper, because of its scheduling overhead at this scale.

#include "bench_common.h"

int main() {
  using namespace bsio;
  using namespace bsio::bench;

  banner("Fig 5(b) — batch execution time vs batch size",
         "4 compute (40 GB disk each) + 4 XIO storage, high-overlap IMAGE, "
         "500..4000 tasks",
         "all curves grow with batch size, but the base schemes grow faster "
         "once aggregate demand exceeds the 160 GB aggregate disk (more "
         "evictions/re-stages); BiPartition stays lowest");

  // CT-heavy studies reproduce the paper's aggregate demand: 8 x 64 MB
  // files per task -> ~40 GB unique at 500 tasks, ~330 GB at 4000.
  auto make_workload = [](std::size_t tasks) {
    wl::ImageConfig cfg;
    cfg.num_tasks = tasks;
    cfg.num_storage_nodes = 4;
    cfg.ct_per_study = 8;
    cfg.mri_per_study = 0;
    cfg.mri_window = 0;
    return wl::make_image_calibrated(cfg, 0.85).workload;
  };

  core::ExperimentOptions opts;
  opts.algorithms = {core::Algorithm::kBiPartition, core::Algorithm::kMinMin,
                     core::Algorithm::kJobDataPresent};

  std::vector<core::ExperimentCase> cases;
  for (std::size_t tasks : {500u, 1000u, 2000u, 4000u}) {
    wl::Workload w = make_workload(tasks);
    sim::ClusterConfig cluster = sim::xio_cluster(4, 4);
    cluster.disk_capacity = 40.0 * sim::kGB;
    char label[48];
    std::snprintf(label, sizeof(label), "%zu tasks (%s demand)", tasks,
                  format_bytes(w.unique_request_bytes()).c_str());
    cases.push_back({label, std::move(w), cluster});
  }
  auto results = core::run_experiment(cases, opts);
  core::batch_time_table(results, opts.algorithms).print("Fig 5(b)");
  core::transfer_table(results, opts.algorithms)
      .print("Fig 5(b) — evictions and re-stages");
  return 0;
}
