// Figure 5(a): benefit of compute-node-to-compute-node replication over no
// replication. 8 OSC compute nodes + 4 OSUMED storage nodes, 100-task high
// overlap batches of both applications.

#include "bench_common.h"

int main() {
  using namespace bsio;
  using namespace bsio::bench;

  banner("Fig 5(a) — replication vs no replication",
         "8 compute + 4 OSUMED storage nodes, 100-task high-overlap batches",
         "replication clearly wins: replicas add transfer sources inside "
         "the compute cluster and bypass the congested shared uplink");

  core::ExperimentOptions opts;
  opts.algorithms = {core::Algorithm::kIp, core::Algorithm::kBiPartition};
  opts.run_options.ip.allocation_mip.time_limit_seconds = 8.0;

  Table t({"application", "algorithm", "with replication (s)",
           "no replication (s)", "speedup"});
  for (const char* app : {"IMAGE", "SAT"}) {
    wl::Workload w = app == std::string("IMAGE") ? image_workload(0.85)
                                                 : sat_workload(0.85);
    for (core::Algorithm a : opts.algorithms) {
      sim::ClusterConfig on = sim::osumed_cluster(8, 4);
      sim::ClusterConfig off = on;
      off.allow_replication = false;
      double t_on =
          core::run_batch_scheduler(a, w, on, opts.run_options).batch_time;
      double t_off =
          core::run_batch_scheduler(a, w, off, opts.run_options).batch_time;
      t.add_row({app, core::algorithm_name(a), format_fixed(t_on, 1),
                 format_fixed(t_off, 1), format_fixed(t_off / t_on, 2)});
      std::fprintf(stderr, "  [%s/%s] repl=%.1fs norepl=%.1fs\n", app,
                   core::algorithm_name(a), t_on, t_off);
    }
  }
  t.print("Fig 5(a) replication benefit");
  return 0;
}
