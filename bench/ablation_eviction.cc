// Ablation: the popularity eviction policy of Eq. 22 vs LRU vs
// smallest-file-first, under the Fig 5(b) disk-pressure setup. Popularity
// keeps files that are large, still wanted and rare on the cluster — the
// three terms of Eq. 22 — so it should re-stage less than the simpler
// policies.

#include "bench_common.h"

#include "sched/bipartition.h"
#include "sched/driver.h"
#include "sched/minmin.h"

namespace {

// Wraps a scheduler, overriding only its eviction policy.
class EvictionOverride : public bsio::sched::Scheduler {
 public:
  EvictionOverride(bsio::sched::Scheduler& inner,
                   bsio::sim::EvictionPolicy policy)
      : inner_(inner), policy_(policy) {}
  std::string name() const override { return inner_.name(); }
  bsio::sim::EvictionPolicy eviction_policy() const override {
    return policy_;
  }
  bsio::sim::SubBatchPlan plan_sub_batch(
      const std::vector<bsio::wl::TaskId>& pending,
      const bsio::sched::SchedulerContext& ctx) override {
    return inner_.plan_sub_batch(pending, ctx);
  }

 private:
  bsio::sched::Scheduler& inner_;
  bsio::sim::EvictionPolicy policy_;
};

const char* policy_name(bsio::sim::EvictionPolicy p) {
  switch (p) {
    case bsio::sim::EvictionPolicy::kPopularity:
      return "popularity (Eq. 22)";
    case bsio::sim::EvictionPolicy::kLru:
      return "LRU";
    case bsio::sim::EvictionPolicy::kSizeAscending:
      return "smallest-first";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace bsio;
  using namespace bsio::bench;

  banner("Ablation — disk-cache eviction policy (Eq. 22)",
         "2000 high-overlap CT-heavy IMAGE tasks, 4 compute (8 GB disk) + "
         "4 XIO storage",
         "finding: under the Section 6 ECT runtime ordering, popularity and "
         "LRU coincide — tasks sharing files run back to back, so evicted "
         "files are already dead; only the size-ascending policy (which "
         "ignores liveness) re-stages. The Eq. 22 policy's value is that it "
         "is *safe*: it never evicts a still-wanted file when a dead one "
         "exists, whatever the task order");

  wl::ImageConfig cfg;
  cfg.num_tasks = 2000;
  cfg.num_storage_nodes = 4;
  cfg.ct_per_study = 8;
  cfg.mri_per_study = 0;
  cfg.mri_window = 0;
  wl::Workload w = wl::make_image_calibrated(cfg, 0.85).workload;
  sim::ClusterConfig cluster = sim::xio_cluster(4, 4);
  // Much tighter than Fig 5(b)'s 40 GB: the per-node working set no longer
  // fits, so eviction must sometimes sacrifice files that are still
  // wanted — the regime where the policies differ.
  cluster.disk_capacity = 8.0 * sim::kGB;

  Table t({"scheduler", "eviction", "batch (s)", "evictions", "restages"});
  for (int which = 0; which < 2; ++which) {
    sched::BiPartitionScheduler bp;
    sched::MinMinScheduler mm;
    sched::Scheduler& inner =
        which == 0 ? static_cast<sched::Scheduler&>(bp)
                   : static_cast<sched::Scheduler&>(mm);
    for (sim::EvictionPolicy p :
         {sim::EvictionPolicy::kPopularity, sim::EvictionPolicy::kLru,
          sim::EvictionPolicy::kSizeAscending}) {
      EvictionOverride sched(inner, p);
      auto r = sched::run_batch(sched, w, cluster);
      t.add_row({r.scheduler, policy_name(p), format_fixed(r.batch_time, 1),
                 std::to_string(r.stats.evictions),
                 std::to_string(r.stats.restages)});
      std::fprintf(stderr, "  [%s/%s] %.1fs evict=%zu\n", r.scheduler.c_str(),
                   policy_name(p), r.batch_time, r.stats.evictions);
    }
  }
  t.print("eviction-policy ablation");
  return 0;
}
