// Microbenchmarks of the multilevel hypergraph partitioner (google-
// benchmark): K-way partitioning and BINW sub-batch selection across
// hypergraph sizes. These are the inner loops behind BiPartition's
// near-zero scheduling overhead in Fig 6(b).

#include <benchmark/benchmark.h>

#include "hypergraph/metrics.h"
#include "hypergraph/partitioner.h"
#include "util/rng.h"

namespace {

using namespace bsio;

hg::Hypergraph random_hypergraph(std::size_t nv, std::size_t nn,
                                 std::uint64_t seed) {
  Rng rng(seed);
  hg::HypergraphBuilder b;
  for (std::size_t i = 0; i < nv; ++i)
    b.add_vertex(0.5 + rng.uniform_double());
  for (std::size_t n = 0; n < nn; ++n) {
    std::vector<hg::VertexId> pins;
    std::size_t sz = 2 + rng.uniform(6);
    for (std::size_t p = 0; p < sz; ++p)
      pins.push_back(static_cast<hg::VertexId>(rng.uniform(nv)));
    b.add_net(1.0 + rng.uniform_double() * 4.0, std::move(pins));
  }
  return b.build();
}

void BM_PartitionKway(benchmark::State& state) {
  const auto nv = static_cast<std::size_t>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  hg::Hypergraph h = random_hypergraph(nv, 2 * nv, 42);
  hg::PartitionerOptions opts;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.seed = ++seed;
    auto parts = hg::partition_kway(h, k, opts);
    benchmark::DoNotOptimize(parts.data());
  }
  state.counters["vertices"] = static_cast<double>(nv);
  state.counters["k"] = k;
}
BENCHMARK(BM_PartitionKway)
    ->Args({100, 4})
    ->Args({1000, 4})
    ->Args({1000, 32})
    ->Args({4000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_PartitionBinw(benchmark::State& state) {
  const auto nv = static_cast<std::size_t>(state.range(0));
  hg::Hypergraph h = random_hypergraph(nv, 2 * nv, 7);
  const double bound =
      (h.total_net_weight() + h.total_folded_weight()) / state.range(1);
  hg::PartitionerOptions opts;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.seed = ++seed;
    auto r = hg::partition_binw(h, bound, opts);
    benchmark::DoNotOptimize(r.parts.data());
  }
}
BENCHMARK(BM_PartitionBinw)
    ->Args({500, 3})
    ->Args({2000, 3})
    ->Args({2000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_ConnectivityMetric(benchmark::State& state) {
  const auto nv = static_cast<std::size_t>(state.range(0));
  hg::Hypergraph h = random_hypergraph(nv, 2 * nv, 13);
  auto parts = hg::partition_kway(h, 8, {});
  for (auto _ : state) {
    double c = hg::connectivity_minus_one(h, parts, 8);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ConnectivityMetric)->Arg(1000)->Arg(4000);

}  // namespace

BENCHMARK_MAIN();
