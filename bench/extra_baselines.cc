// Extension study (beyond the paper): the full baseline family — MinMin,
// MaxMin, Sufferage (all with data-aware MCT and implicit replication,
// per Casanova et al.'s adaptation that the paper cites) — against the
// proposed BiPartition scheme, on the Fig 3 IMAGE grid. Shows how much of
// the proposed schemes' advantage survives against stronger greedy
// orderings that still lack global file-affinity information.

#include "bench_common.h"

int main() {
  using namespace bsio;
  using namespace bsio::bench;

  banner("Extension — greedy baseline family vs BiPartition",
         "4 compute + 4 storage nodes, 100-task IMAGE batches",
         "no greedy ordering closes the gap at high overlap: the win comes "
         "from global file-affinity clustering, not the commit order");

  core::ExperimentOptions opts;
  opts.algorithms = {core::Algorithm::kBiPartition, core::Algorithm::kMinMin,
                     core::Algorithm::kMaxMin, core::Algorithm::kSufferage};

  for (bool osumed : {false, true}) {
    std::vector<core::ExperimentCase> cases;
    for (double ov : {0.85, 0.40, 0.0})
      cases.push_back({overlap_label(ov), image_workload(ov),
                       osumed ? sim::osumed_cluster(4, 4)
                              : sim::xio_cluster(4, 4)});
    auto results = core::run_experiment(cases, opts);
    core::batch_time_table(results, opts.algorithms)
        .print(std::string("baseline family — ") +
               (osumed ? "OSUMED" : "XIO"));
  }
  return 0;
}
