// Figure 6: scalability with the number of compute nodes.
//  (a) batch execution time of the four schemes, 1000 high-overlap IMAGE
//      tasks, 8 XIO storage nodes, 2..32 compute nodes;
//  (b) per-task scheduling time (ms) of the same runs.
//
// The IP scheme runs with its engineering cap (128-task slices, 5 s solver
// budget per stage) and is skipped beyond 8 compute nodes, where the
// allocation model alone (tasks x nodes^2 replication variables) exceeds
// any sensible bench budget — the paper reports the same blow-up as
// "exponential complexity of the search".

#include "bench_common.h"

int main() {
  using namespace bsio;
  using namespace bsio::bench;

  banner("Fig 6 — scaling with compute nodes",
         "1000 high-overlap IMAGE tasks, 8 XIO storage nodes, 2..32 compute "
         "nodes",
         "(a) batch time falls with more nodes, then rises again at 32 as "
         "storage contention dominates; BiPartition best throughout. "
         "(b) per-task overhead: IP >> MinMin > JobDataPresent ~ "
         "BiPartition; IP grows steeply with node count");

  wl::Workload w = image_workload(0.85, /*tasks=*/1000, /*storage_nodes=*/8);

  core::ExperimentOptions all;
  all.algorithms = {core::Algorithm::kBiPartition, core::Algorithm::kMinMin,
                    core::Algorithm::kJobDataPresent};
  core::ExperimentOptions with_ip = all;
  with_ip.algorithms.insert(with_ip.algorithms.begin(), core::Algorithm::kIp);
  with_ip.run_options.ip.selection_mip.time_limit_seconds = 5.0;
  with_ip.run_options.ip.allocation_mip.time_limit_seconds = 5.0;

  Table fig6a({"compute nodes", "IP (s)", "BiPartition (s)", "MinMin (s)",
               "JobDataPresent (s)"});
  Table fig6b({"compute nodes", "IP (ms/task)", "BiPartition (ms/task)",
               "MinMin (ms/task)", "JobDataPresent (ms/task)"});

  for (std::size_t nodes : {2u, 4u, 8u, 16u, 32u}) {
    const bool run_ip = nodes <= 8;
    // Shrink IP slices as the node count grows: the allocation model holds
    // O(groups x nodes^2) replication variables.
    with_ip.run_options.ip.max_subbatch_tasks = 512 / nodes;
    const core::ExperimentOptions& opts = run_ip ? with_ip : all;
    std::vector<core::ExperimentCase> cases{
        {std::to_string(nodes) + " nodes", w, sim::xio_cluster(nodes, 8)}};
    auto results = core::run_experiment(cases, opts);
    const auto& runs = results.front().runs;

    std::vector<std::string> row_a{std::to_string(nodes)};
    std::vector<std::string> row_b{std::to_string(nodes)};
    std::size_t idx = 0;
    if (run_ip) {
      row_a.push_back(format_fixed(runs[idx].batch_time, 1));
      row_b.push_back(format_fixed(runs[idx].per_task_scheduling_ms, 3));
      ++idx;
    } else {
      row_a.push_back("- (capped)");
      row_b.push_back("- (capped)");
    }
    for (; idx < runs.size(); ++idx) {
      row_a.push_back(format_fixed(runs[idx].batch_time, 1));
      row_b.push_back(format_fixed(runs[idx].per_task_scheduling_ms, 3));
    }
    fig6a.add_row(std::move(row_a));
    fig6b.add_row(std::move(row_b));
  }
  fig6a.print("Fig 6(a) batch execution time");
  fig6b.print("Fig 6(b) per-task scheduling time");
  return 0;
}
