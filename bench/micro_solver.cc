// Microbenchmarks of the LP / 0-1 IP substrate (google-benchmark): dual
// simplex solves and branch-and-bound on makespan-assignment models of
// growing size — the cost driver behind the IP scheme's Fig 6(b) overhead
// curve.

#include <benchmark/benchmark.h>

#include "ip/branch_and_bound.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace {

using namespace bsio;

// min z s.t. tasks assigned to machines, z >= per-machine load.
lp::Model makespan_model(int tasks, int machines, std::uint64_t seed,
                         std::vector<int>* bins) {
  Rng rng(seed);
  lp::Model m;
  int z = m.add_var(1.0, 0.0, 1e9);
  std::vector<std::vector<int>> t(tasks, std::vector<int>(machines));
  for (int k = 0; k < tasks; ++k)
    for (int i = 0; i < machines; ++i)
      bins->push_back(t[k][i] = m.add_binary(0.0));
  for (int k = 0; k < tasks; ++k) {
    std::vector<lp::RowEntry> row;
    for (int i = 0; i < machines; ++i) row.push_back({t[k][i], 1.0});
    m.add_row(lp::Sense::kEq, 1.0, std::move(row));
  }
  for (int i = 0; i < machines; ++i) {
    std::vector<lp::RowEntry> row{{z, -1.0}};
    for (int k = 0; k < tasks; ++k)
      row.push_back({t[k][i], 1.0 + rng.uniform_double() * 4.0});
    m.add_row(lp::Sense::kLe, 0.0, std::move(row));
  }
  return m;
}

void BM_DualSimplexLpRelaxation(benchmark::State& state) {
  std::vector<int> bins;
  lp::Model m = makespan_model(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)), 3, &bins);
  for (auto _ : state) {
    lp::DualSimplex s(m);
    auto r = s.solve();
    benchmark::DoNotOptimize(r.objective);
  }
  state.counters["rows"] = m.num_rows();
  state.counters["cols"] = m.num_vars();
}
BENCHMARK(BM_DualSimplexLpRelaxation)
    ->Args({50, 4})
    ->Args({200, 4})
    ->Args({200, 16})
    ->Unit(benchmark::kMillisecond);

void BM_BranchAndBound(benchmark::State& state) {
  std::vector<int> bins;
  lp::Model m = makespan_model(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)), 5, &bins);
  ip::MipOptions opts;
  opts.time_limit_seconds = 2.0;
  opts.max_nodes = 2000;
  for (auto _ : state) {
    ip::MipSolver solver(m, bins);
    auto r = solver.solve(opts);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BranchAndBound)
    ->Args({20, 2})
    ->Args({40, 4})
    ->Unit(benchmark::kMillisecond);

void BM_WarmRestartAfterBoundChange(benchmark::State& state) {
  std::vector<int> bins;
  lp::Model m = makespan_model(100, 4, 9, &bins);
  lp::DualSimplex s(m);
  s.solve();
  Rng rng(11);
  for (auto _ : state) {
    int v = bins[rng.uniform(bins.size())];
    double fix = rng.bernoulli(0.5) ? 1.0 : 0.0;
    s.set_bounds(v, fix, fix);
    auto r = s.solve();
    benchmark::DoNotOptimize(r.objective);
    s.set_bounds(v, 0.0, 1.0);
    s.solve();
  }
}
BENCHMARK(BM_WarmRestartAfterBoundChange)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
