// Microbenchmarks of the LP / 0-1 IP substrate (google-benchmark): dual
// simplex solves and branch-and-bound on makespan-assignment models of
// growing size — the cost driver behind the IP scheme's Fig 6(b) overhead
// curve — plus a dense-vs-sparse kernel head-to-head on the paper's
// Section-4 allocation IP.

#include <benchmark/benchmark.h>

#include "ip/branch_and_bound.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "sched/ip_formulation.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace bsio;

// min z s.t. tasks assigned to machines, z >= per-machine load.
lp::Model makespan_model(int tasks, int machines, std::uint64_t seed,
                         std::vector<int>* bins) {
  Rng rng(seed);
  lp::Model m;
  int z = m.add_var(1.0, 0.0, 1e9);
  std::vector<std::vector<int>> t(tasks, std::vector<int>(machines));
  for (int k = 0; k < tasks; ++k)
    for (int i = 0; i < machines; ++i)
      bins->push_back(t[k][i] = m.add_binary(0.0));
  for (int k = 0; k < tasks; ++k) {
    std::vector<lp::RowEntry> row;
    for (int i = 0; i < machines; ++i) row.push_back({t[k][i], 1.0});
    m.add_row(lp::Sense::kEq, 1.0, std::move(row));
  }
  for (int i = 0; i < machines; ++i) {
    std::vector<lp::RowEntry> row{{z, -1.0}};
    for (int k = 0; k < tasks; ++k)
      row.push_back({t[k][i], 1.0 + rng.uniform_double() * 4.0});
    m.add_row(lp::Sense::kLe, 0.0, std::move(row));
  }
  return m;
}

void BM_DualSimplexLpRelaxation(benchmark::State& state) {
  std::vector<int> bins;
  lp::Model m = makespan_model(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)), 3, &bins);
  for (auto _ : state) {
    lp::DualSimplex s(m);
    auto r = s.solve();
    benchmark::DoNotOptimize(r.objective);
  }
  state.counters["rows"] = m.num_rows();
  state.counters["cols"] = m.num_vars();
}
BENCHMARK(BM_DualSimplexLpRelaxation)
    ->Args({50, 4})
    ->Args({200, 4})
    ->Args({200, 16})
    ->Unit(benchmark::kMillisecond);

void BM_BranchAndBound(benchmark::State& state) {
  std::vector<int> bins;
  lp::Model m = makespan_model(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)), 5, &bins);
  ip::MipOptions opts;
  opts.time_limit_seconds = 2.0;
  opts.max_nodes = 2000;
  for (auto _ : state) {
    ip::MipSolver solver(m, bins);
    auto r = solver.solve(opts);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BranchAndBound)
    ->Args({20, 2})
    ->Args({40, 4})
    ->Unit(benchmark::kMillisecond);

// The Section-4 allocation IP (task mapping + staging + replication over a
// 32-node cluster) at growing task counts — the model class the IP
// scheduler actually solves. arg0 = tasks, arg1 = 1 for the legacy dense
// basis inverse, 0 for the sparse LU kernel. The dense backend is O(m^2)
// per pivot, so it is only benchmarked on the smallest instances.
void BM_AllocationRootLp(benchmark::State& state) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = static_cast<std::size_t>(state.range(0));
  cfg.files_per_task = 8;
  cfg.overlap = 0.85;
  cfg.file_size_bytes = 50.0 * sim::kMB;
  cfg.num_storage_nodes = 4;
  cfg.seed = 7;
  const wl::Workload w = wl::make_synthetic(cfg);

  sim::ClusterConfig c;
  c.num_compute_nodes = 32;
  c.num_storage_nodes = 4;
  c.storage_disk_bw = 50.0 * sim::kMB;
  c.storage_net_bw = 500.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;
  c.local_disk_bw = 200.0 * sim::kMB;
  sim::ExecutionEngine eng(c, w, {});

  std::vector<wl::TaskId> tasks;
  for (const auto& t : w.tasks()) tasks.push_back(t.id);
  const sched::AllocationModel alloc(
      w, tasks, sched::coalesce_files(w, tasks, eng.state()), eng.topology(),
      {});

  lp::SimplexOptions so;
  so.use_dense_basis = state.range(1) != 0;
  // The dense backend gets a bounded budget: beyond ~4 tasks it cannot
  // finish these degenerate models (it predates the perturbation machinery),
  // and an honest truncated row beats a bench that runs for minutes.
  so.time_limit_seconds = so.use_dense_basis ? 10.0 : 120.0;
  lp::SolveResult last;
  for (auto _ : state) {
    lp::DualSimplex s(alloc.model(), so);
    last = s.solve();
    benchmark::DoNotOptimize(last.objective);
  }
  state.counters["rows"] = alloc.model().num_rows();
  state.counters["cols"] = alloc.model().num_vars();
  state.counters["iters"] = last.iterations;
  state.counters["factorizations"] = static_cast<double>(
      last.stats.factorizations);
  state.counters["fill_nnz"] = static_cast<double>(last.stats.factor_fill_nnz);
  state.counters["bound_flips"] = static_cast<double>(last.stats.bound_flips);
  state.counters["degen_pivots"] = static_cast<double>(
      last.stats.degenerate_pivots);
  state.counters["optimal"] =
      last.status == lp::SolveStatus::kOptimal ? 1.0 : 0.0;
}
BENCHMARK(BM_AllocationRootLp)
    ->ArgNames({"tasks", "dense"})
    // Sparse kernel scales through the bench sub-batch sizes...
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({16, 0})
    ->Args({32, 0})
    // ...the dense oracle is already struggling at 8 tasks.
    ->Args({4, 1})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond);

void BM_WarmRestartAfterBoundChange(benchmark::State& state) {
  std::vector<int> bins;
  lp::Model m = makespan_model(100, 4, 9, &bins);
  lp::DualSimplex s(m);
  s.solve();
  Rng rng(11);
  for (auto _ : state) {
    int v = bins[rng.uniform(bins.size())];
    double fix = rng.bernoulli(0.5) ? 1.0 : 0.0;
    s.set_bounds(v, fix, fix);
    auto r = s.solve();
    benchmark::DoNotOptimize(r.objective);
    s.set_bounds(v, 0.0, 1.0);
    s.solve();
  }
}
BENCHMARK(BM_WarmRestartAfterBoundChange)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
