// Planning-performance harness for the parallel scheduling core.
//
// Times every scheduler's planning loop across batch sizes and thread
// counts on a synthetic overlap-controlled workload, verifies that the
// resulting plans are bit-identical to the single-thread run (the pool's
// determinism contract), and emits BENCH_sched.json — the repo's perf
// trajectory record: planning wall-time, simulated makespan, and speedup
// vs 1 thread per (scheduler, batch size, thread count) cell.
//
// A second sweep re-runs the four paper schedulers on increasingly
// heterogeneous clusters (sim::make_skewed_cluster: log-uniform disk / NIC /
// CPU skew around the homogeneous baseline) and records per-skew makespans
// in the same JSON, so scheduler robustness to hardware imbalance is part
// of the perf trajectory.
//
//   perf_makespan [--smoke] [--out <path>] [--max-ip-seconds <s>]
//                 [--min-speedup <x>] [--threads <t1,t2,...>]
//
// --smoke shrinks the grid for CI (small batches, 1-2 threads).
// --threads overrides the thread grid (first entry is the speedup
// baseline); --min-speedup fails the run unless some scheduler reaches
// that planning speedup at a thread count > 1.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sched/bipartition.h"
#include "sched/driver.h"
#include "sched/ip_scheduler.h"
#include "sched/job_data_present.h"
#include "sched/minmin.h"
#include "sim/cluster.h"
#include "util/ws_runtime.h"
#include "workload/synthetic.h"

namespace {

using namespace bsio;

struct Row {
  std::string scheduler;
  std::size_t tasks = 0;
  std::size_t nodes = 0;
  std::size_t threads = 0;
  double planning_seconds = 0.0;
  double makespan_seconds = 0.0;
  double speedup_vs_1t = 0.0;
  std::uint64_t plan_hash = 0;  // outcome fingerprint (see plan_hash())
  bool bit_identical = true;    // plan outcome matches the 1-thread run
  // Solver kernel counters (IP rows only; zero for the heuristics).
  long lp_factorizations = 0;
  long lp_fill_nnz = 0;
  long lp_pivots = 0;
  long lp_bound_flips = 0;
  long lp_degenerate_pivots = 0;
  long mip_nodes = 0;
};

// One cell of the heterogeneity sweep.
struct HeteroRow {
  std::string scheduler;
  double skew = 0.0;
  std::size_t tasks = 0;
  double planning_seconds = 0.0;
  double makespan_seconds = 0.0;
  double vs_homogeneous = 0.0;  // makespan / the same scheduler's skew-0 run
};

struct SchedulerSpec {
  std::string label;
  // IP solves are only affordable on small instances; cap the batch size.
  std::size_t max_tasks;
  std::unique_ptr<sched::Scheduler> (*make)();
};

std::unique_ptr<sched::Scheduler> make_minmin_exact() {
  // Threshold above any bench size: always the exact O(T^2 N F) path.
  return std::make_unique<sched::MinMinScheduler>(1u << 20);
}
std::unique_ptr<sched::Scheduler> make_minmin_lazy() {
  return std::make_unique<sched::MinMinScheduler>(0);  // always lazy
}
std::unique_ptr<sched::Scheduler> make_jdp() {
  return std::make_unique<sched::JobDataPresentScheduler>();
}
std::unique_ptr<sched::Scheduler> make_bipartition() {
  return std::make_unique<sched::BiPartitionScheduler>();
}
std::unique_ptr<sched::Scheduler> make_ip() {
  sched::IpSchedulerOptions o = sched::IpScheduler::default_options();
  // One 32-task wave per IP solve, with a tight per-round budget. Measured
  // on the bench workloads, branch-and-bound polish past the warm-started
  // incumbent never changes the plan (a 10 s budget and a 40 ms budget
  // produce bit-identical makespans), so the budget only sets how much
  // planning time the bench pays per sub-batch — and the sliced plans beat
  // the old single-shot 2 s configuration on simulated makespan.
  o.max_subbatch_tasks = 32;
  o.selection_mip.time_limit_seconds = 0.04;
  o.allocation_mip.time_limit_seconds = 0.04;
  o.selection_mip.stall_node_limit = 64;
  o.allocation_mip.stall_node_limit = 64;
  return std::make_unique<sched::IpScheduler>(o);
}

// FNV-1a fingerprint of the simulated outcome: the makespan's bit pattern,
// every task completion instant's bit pattern, and the transfer counters.
// Bit-identical plans hash equal on any host, so CI can compare the
// 1-thread and multi-thread runs by one number.
std::uint64_t plan_hash(const sched::BatchRunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  auto mix_double = [&](double d) {
    std::uint64_t v;
    std::memcpy(&v, &d, sizeof v);
    mix(v);
  };
  mix_double(r.batch_time);
  mix(r.stats.remote_transfers);
  mix(r.stats.replications);
  mix(r.stats.evictions);
  mix(static_cast<std::uint64_t>(r.task_completion_times.size()));
  for (double t : r.task_completion_times) mix_double(t);
  return h;
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

wl::Workload bench_workload(std::size_t tasks, std::size_t storage_nodes) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = tasks;
  cfg.files_per_task = 8;
  cfg.overlap = 0.85;
  cfg.file_size_bytes = 50.0 * sim::kMB;
  cfg.num_storage_nodes = storage_nodes;
  cfg.seed = 7;
  return wl::make_synthetic(cfg);
}

sim::ClusterConfig bench_cluster(std::size_t compute_nodes,
                                 std::size_t storage_nodes) {
  sim::ClusterConfig c;
  c.num_compute_nodes = compute_nodes;
  c.num_storage_nodes = storage_nodes;
  c.storage_disk_bw = 50.0 * sim::kMB;
  c.storage_net_bw = 500.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;
  c.local_disk_bw = 200.0 * sim::kMB;
  return c;
}

void write_json(const char* path, const std::vector<Row>& rows,
                const std::vector<HeteroRow>& hetero_rows,
                std::size_t compute_nodes, bool smoke) {
  bench::JsonWriter j(path);
  j.begin_object();
  j.field("bench", "perf_makespan");
  j.begin_object("config");
  j.field("workload", "synthetic overlap=0.85 files_per_task=8 seed=7");
  j.field("compute_nodes", compute_nodes);
  // Speedups are bounded by the host: a 1-core machine shows ~1x at every
  // thread count (plus dispatch overhead), while plans stay bit-identical.
  j.field("host_cpus", std::thread::hardware_concurrency());
  j.field("smoke", smoke);
  j.end_object();
  j.field("peak_rss_mb", bench::peak_rss_mb(), 1);
  j.begin_array("results");
  for (const Row& r : rows) {
    j.begin_object();
    j.field("scheduler", r.scheduler);
    j.field("tasks", r.tasks);
    j.field("nodes", r.nodes);
    j.field("threads", r.threads);
    j.field("planning_seconds", r.planning_seconds);
    j.field("makespan_seconds", r.makespan_seconds);
    j.field("speedup_vs_1t", r.speedup_vs_1t, 3);
    j.field("plan_hash", hash_hex(r.plan_hash));
    j.field("bit_identical", r.bit_identical);
    if (r.scheduler == "IP") {
      j.field("lp_factorizations", r.lp_factorizations);
      j.field("lp_fill_nnz", r.lp_fill_nnz);
      j.field("lp_pivots", r.lp_pivots);
      j.field("lp_bound_flips", r.lp_bound_flips);
      j.field("lp_degenerate_pivots", r.lp_degenerate_pivots);
      j.field("mip_nodes", r.mip_nodes);
    }
    j.end_object();
  }
  j.end_array();
  j.begin_array("hetero_results");
  for (const HeteroRow& r : hetero_rows) {
    j.begin_object();
    j.field("scheduler", r.scheduler);
    j.field("skew", r.skew, 2);
    j.field("tasks", r.tasks);
    j.field("planning_seconds", r.planning_seconds);
    j.field("makespan_seconds", r.makespan_seconds);
    j.field("vs_homogeneous", r.vs_homogeneous, 4);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs args(argc, argv);
  const bool smoke = args.has("--smoke");
  const char* out_path = args.value("--out", "BENCH_sched.json");
  const double max_ip_seconds =
      args.number("--max-ip-seconds", 0.0);  // 0 = no ceiling
  // Require at least one scheduler to reach this planning speedup at some
  // thread count > 1 (0 = don't check). CI's multi-core smoke passes 1.2;
  // single-core hosts should leave it off — there is no parallelism to win.
  const double min_speedup = args.number("--min-speedup", 0.0);
  const char* thread_arg = args.value("--threads", "");
  args.reject_unknown(
      "perf_makespan [--smoke] [--out <path>] [--max-ip-seconds <s>] "
      "[--min-speedup <x>] [--threads <t1,t2,...>]");

  const std::size_t compute_nodes = smoke ? 8 : 32;
  const std::size_t storage_nodes = 4;
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{32, 64}
            : std::vector<std::size_t>{64, 128, 256, 512};
  std::vector<std::size_t> threads =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  if (*thread_arg != '\0') {
    // "--threads 1,4" -> {1, 4}; the first entry is the speedup baseline.
    threads.clear();
    std::string s = thread_arg;
    std::size_t pos = 0;
    while (pos <= s.size()) {
      const std::size_t comma = s.find(',', pos);
      const std::string tok =
          s.substr(pos, comma == std::string::npos ? comma : comma - pos);
      if (!tok.empty()) {
        const long v = std::strtol(tok.c_str(), nullptr, 10);
        if (v <= 0) {
          std::fprintf(stderr, "perf_makespan: bad --threads entry '%s'\n",
                       tok.c_str());
          return 2;
        }
        threads.push_back(static_cast<std::size_t>(v));
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (threads.empty()) threads.push_back(1);
  }

  const std::vector<SchedulerSpec> specs = {
      {"MinMin-exact", static_cast<std::size_t>(-1), &make_minmin_exact},
      {"MinMin-lazy", static_cast<std::size_t>(-1), &make_minmin_lazy},
      {"JobDataPresent", static_cast<std::size_t>(-1), &make_jdp},
      {"BiPartition", static_cast<std::size_t>(-1), &make_bipartition},
      {"IP", 256, &make_ip},
  };

  const sim::ClusterConfig cluster =
      bench_cluster(compute_nodes, storage_nodes);

  std::printf("perf_makespan: %zu compute nodes, thread sweep {",
              compute_nodes);
  for (std::size_t t : threads) std::printf(" %zu", t);
  std::printf(" }%s\n\n", smoke ? " (smoke)" : "");
  std::printf("%-16s %6s %8s %12s %12s %8s %5s\n", "scheduler", "tasks",
              "threads", "plan [s]", "makespan [s]", "speedup", "same");

  std::vector<Row> rows;
  for (const auto& spec : specs) {
    for (std::size_t tasks : sizes) {
      if (tasks > spec.max_tasks) continue;
      const wl::Workload w = bench_workload(tasks, storage_nodes);
      double base_planning = 0.0;
      std::uint64_t base_hash = 0;
      for (std::size_t t : threads) {
        WsRuntime::set_global_threads(t);
        auto scheduler = spec.make();
        const sched::BatchRunResult r =
            sched::run_batch(*scheduler, w, cluster);
        if (!r.ok()) {
          std::fprintf(stderr, "perf_makespan: %s failed: %s\n",
                       spec.label.c_str(), r.error.c_str());
          return 1;
        }
        Row row;
        row.scheduler = spec.label;
        row.tasks = tasks;
        row.nodes = compute_nodes;
        row.threads = t;
        row.planning_seconds = r.scheduling_seconds;
        row.makespan_seconds = r.batch_time;
        row.lp_factorizations = r.stats.lp_factorizations;
        row.lp_fill_nnz = r.stats.lp_factor_fill_nnz;
        row.lp_pivots = r.stats.lp_pivots;
        row.lp_bound_flips = r.stats.lp_bound_flips;
        row.lp_degenerate_pivots = r.stats.lp_degenerate_pivots;
        row.mip_nodes = r.stats.mip_nodes;
        row.plan_hash = plan_hash(r);
        if (t == threads.front()) {
          base_planning = r.scheduling_seconds;
          base_hash = row.plan_hash;
        }
        row.speedup_vs_1t =
            r.scheduling_seconds > 0.0 ? base_planning / r.scheduling_seconds
                                       : 1.0;
        // The determinism contract: same plans => the same outcome
        // fingerprint (makespan bits, every completion instant, transfer
        // counters) at every thread count.
        row.bit_identical = row.plan_hash == base_hash;
        std::printf("%-16s %6zu %8zu %12.4f %12.2f %7.2fx %5s\n",
                    row.scheduler.c_str(), row.tasks, row.threads,
                    row.planning_seconds, row.makespan_seconds,
                    row.speedup_vs_1t, row.bit_identical ? "yes" : "NO");
        std::fflush(stdout);
        rows.push_back(std::move(row));
      }
    }
  }

  // ---- Heterogeneity sweep: same workload, increasingly skewed hardware.
  // Every scheduler plans through sim::Topology, so skewed disk / NIC / CPU
  // rates change both the plans and the simulated outcome; the homogeneous
  // (skew 0) cell doubles as a bit-identity anchor against the main grid.
  WsRuntime::set_global_threads(1);
  const std::size_t hetero_tasks = smoke ? 64 : 256;
  const wl::Workload hw = bench_workload(hetero_tasks, storage_nodes);
  const std::vector<double> skews =
      smoke ? std::vector<double>{0.0, 0.5, 1.0}
            : std::vector<double>{0.0, 0.25, 0.5, 1.0, 2.0};
  const std::vector<SchedulerSpec> hetero_specs = {
      {"MinMin", static_cast<std::size_t>(-1), &make_minmin_exact},
      {"JobDataPresent", static_cast<std::size_t>(-1), &make_jdp},
      {"BiPartition", static_cast<std::size_t>(-1), &make_bipartition},
      {"IP", static_cast<std::size_t>(-1), &make_ip},
  };

  std::printf("\nheterogeneity sweep: %zu tasks, skews {", hetero_tasks);
  for (double sk : skews) std::printf(" %.2f", sk);
  std::printf(" }\n");
  std::printf("%-16s %6s %12s %12s %8s\n", "scheduler", "skew", "plan [s]",
              "makespan [s]", "vs-homog");

  std::vector<HeteroRow> hetero_rows;
  for (const auto& spec : hetero_specs) {
    double homog_makespan = 0.0;
    for (double sk : skews) {
      const sim::ClusterConfig hc =
          sim::make_skewed_cluster(cluster, sk, /*seed=*/5);
      auto scheduler = spec.make();
      const sched::BatchRunResult r = sched::run_batch(*scheduler, hw, hc);
      if (!r.ok()) {
        std::fprintf(stderr, "perf_makespan: hetero %s skew %.2f failed: %s\n",
                     spec.label.c_str(), sk, r.error.c_str());
        return 1;
      }
      HeteroRow row;
      row.scheduler = spec.label;
      row.skew = sk;
      row.tasks = hetero_tasks;
      row.planning_seconds = r.scheduling_seconds;
      row.makespan_seconds = r.batch_time;
      if (sk == 0.0) homog_makespan = r.batch_time;
      row.vs_homogeneous =
          homog_makespan > 0.0 ? r.batch_time / homog_makespan : 1.0;
      std::printf("%-16s %6.2f %12.4f %12.2f %7.3fx\n", row.scheduler.c_str(),
                  row.skew, row.planning_seconds, row.makespan_seconds,
                  row.vs_homogeneous);
      std::fflush(stdout);
      hetero_rows.push_back(std::move(row));
    }
  }

  write_json(out_path, rows, hetero_rows, compute_nodes, smoke);
  std::printf("\nwrote %s (%zu + %zu rows)\n", out_path, rows.size(),
              hetero_rows.size());

  bool all_identical = true;
  for (const Row& r : rows) all_identical = all_identical && r.bit_identical;
  if (!all_identical) {
    std::fprintf(stderr,
                 "perf_makespan: plans diverged across thread counts!\n");
    return 1;
  }

  // CI multi-core smoke: at least one scheduler must have turned extra
  // threads into real planning speedup (plans are already known identical
  // from the hash check above, so this certifies the win is free).
  if (min_speedup > 0.0) {
    double best = 0.0;
    std::string best_label = "none";
    for (const Row& r : rows)
      if (r.threads > 1 && r.speedup_vs_1t > best) {
        best = r.speedup_vs_1t;
        best_label = r.scheduler;
      }
    std::printf("best multi-thread planning speedup: %.2fx (%s)\n", best,
                best_label.c_str());
    if (best < min_speedup) {
      std::fprintf(stderr,
                   "perf_makespan: best speedup %.2fx is under the "
                   "--min-speedup floor of %.2fx\n",
                   best, min_speedup);
      return 1;
    }
  }

  // CI perf smoke: the IP scheduler's planning loop must stay under the
  // given ceiling (guards against solver-kernel regressions).
  if (max_ip_seconds > 0.0) {
    for (const Row& r : rows)
      if (r.scheduler == "IP" && r.planning_seconds > max_ip_seconds) {
        std::fprintf(stderr,
                     "perf_makespan: IP planning at %zu tasks took %.3f s, "
                     "over the --max-ip-seconds ceiling of %.3f s\n",
                     r.tasks, r.planning_seconds, max_ip_seconds);
        return 1;
      }
  }
  return 0;
}
