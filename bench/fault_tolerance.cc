// Fault tolerance: makespan degradation of the four schedulers as the
// injected failure rate grows. Three sweeps on the IMAGE workload:
//
//  1. transient transfer-failure probability 0 -> 0.3 (retries with
//     exponential backoff),
//  2. number of compute-node crashes 0 -> 3 (caches lost, orphaned tasks
//     re-scheduled on the survivors),
//  3. a storage-node outage window of growing length.
//
// Every sweep reports the makespan relative to the fault-free run of the
// same scheduler, plus the recovery counters. All faults replay from one
// seed, so rows are reproducible.

#include "bench_common.h"
#include "sim/faults.h"

namespace {

using namespace bsio;

core::RunOptions tuned_options() {
  core::RunOptions opts;
  // Keep the IP solves bounded; the heuristic incumbent keeps quality sane.
  opts.ip.selection_mip.time_limit_seconds = 2.0;
  opts.ip.allocation_mip.time_limit_seconds = 4.0;
  opts.ip.max_subbatch_tasks = 40;
  return opts;
}

}  // namespace

int main() {
  using namespace bsio::bench;

  banner("Fault tolerance — makespan degradation under injected failures",
         "4 compute + 4 XIO storage nodes, 60-task IMAGE batch, seeded "
         "fault injection (transfer failures / node crashes / storage "
         "outages)",
         "schedulers that replicate aggressively (IP, BiPartition) lose "
         "less to storage outages; crash recovery costs grow with the "
         "share of work on the dead nodes");

  const wl::Workload w = image_workload(0.85, /*tasks=*/60);
  const sim::ClusterConfig cluster = sim::xio_cluster(4, 4);
  const core::RunOptions base_opts = tuned_options();

  // Fault-free reference makespans.
  std::vector<double> reference;
  for (core::Algorithm a : core::all_algorithms())
    reference.push_back(
        core::run_batch_scheduler(a, w, cluster, base_opts).batch_time);

  // --- Sweep 1: transient transfer failures. ---
  {
    Table t({"failure prob", "algorithm", "makespan (s)", "vs fault-free",
             "retries", "recovery (s)"});
    for (double prob : {0.0, 0.05, 0.1, 0.2, 0.3}) {
      std::size_t i = 0;
      for (core::Algorithm a : core::all_algorithms()) {
        core::RunOptions opts = base_opts;
        opts.faults.transfer_failure_prob = prob;
        auto r = core::run_batch_scheduler(a, w, cluster, opts);
        t.add_row({format_fixed(prob, 2), core::algorithm_name(a),
                   format_fixed(r.batch_time, 1),
                   format_fixed(r.batch_time / reference[i], 2) + "x",
                   std::to_string(r.stats.transfer_retries),
                   format_fixed(r.stats.recovery_seconds, 1)});
        std::fprintf(stderr, "  [flaky p=%.2f %s] %.1fs (%zu retries)%s\n",
                     prob, core::algorithm_name(a), r.batch_time,
                     r.stats.transfer_retries,
                     r.ok() ? "" : " FAILED");
        ++i;
      }
    }
    t.print("Sweep 1: transient transfer failures (retry + backoff)");
  }

  // --- Sweep 2: compute-node crashes. ---
  {
    Table t({"crashes", "algorithm", "makespan (s)", "vs fault-free",
             "re-executed", "lost replica MB"});
    for (int crashes : {0, 1, 2, 3}) {
      std::size_t i = 0;
      for (core::Algorithm a : core::all_algorithms()) {
        core::RunOptions opts = base_opts;
        // Stagger the fail-stops at 30% / 50% / 70% of this scheduler's
        // fault-free makespan so each crash lands mid-run.
        for (int k = 0; k < crashes; ++k)
          opts.faults.compute_crashes.push_back(
              {static_cast<wl::NodeId>(k), (0.3 + 0.2 * k) * reference[i]});
        auto r = core::run_batch_scheduler(a, w, cluster, opts);
        t.add_row({std::to_string(crashes), core::algorithm_name(a),
                   format_fixed(r.batch_time, 1),
                   format_fixed(r.batch_time / reference[i], 2) + "x",
                   std::to_string(r.stats.task_reexecutions),
                   format_fixed(r.stats.lost_replica_bytes / sim::kMB, 0)});
        std::fprintf(stderr, "  [crashes=%d %s] %.1fs (%zu re-exec)%s\n",
                     crashes, core::algorithm_name(a), r.batch_time,
                     r.stats.task_reexecutions, r.ok() ? "" : " FAILED");
        ++i;
      }
    }
    t.print("Sweep 2: compute-node crashes (re-schedule on survivors)");
  }

  // --- Sweep 3: storage outage window. ---
  {
    Table t({"outage (s)", "algorithm", "makespan (s)", "vs fault-free"});
    for (double len : {0.0, 20.0, 60.0, 120.0}) {
      std::size_t i = 0;
      for (core::Algorithm a : core::all_algorithms()) {
        core::RunOptions opts = base_opts;
        if (len > 0.0) opts.faults.storage_outages = {{0, 5.0, 5.0 + len}};
        auto r = core::run_batch_scheduler(a, w, cluster, opts);
        t.add_row({format_fixed(len, 0), core::algorithm_name(a),
                   format_fixed(r.batch_time, 1),
                   format_fixed(r.batch_time / reference[i], 2) + "x"});
        std::fprintf(stderr, "  [outage=%.0fs %s] %.1fs%s\n", len,
                     core::algorithm_name(a), r.batch_time,
                     r.ok() ? "" : " FAILED");
        ++i;
      }
    }
    t.print("Sweep 3: storage-node outage (degraded replica sourcing)");
  }
  return 0;
}
