// Fault tolerance: makespan degradation of the four schedulers as the
// injected failure rate grows, plus the speculation crossover. Four
// sweeps on the IMAGE workload:
//
//  1. transient transfer-failure probability 0 -> 0.3 (retries with
//     capped exponential backoff),
//  2. number of compute-node crashes 0 -> 3 (caches lost, orphaned tasks
//     re-scheduled on the survivors),
//  3. a storage-node outage window of growing length,
//  4. a degraded (slowed, not dead) compute node of growing severity,
//     retry-only vs speculative task replication — the sweep that locates
//     the crossover where duplicating stragglers beats waiting them out.
//
// Every sweep reports the makespan relative to the fault-free run of the
// same scheduler, the recovery counters, and the per-task completion-time
// tail (p50 / p95 / p99). All faults replay from one seed, so rows are
// reproducible. Results land in BENCH_faults.json.
//
//   fault_tolerance [--smoke] [--out <path>]
//
// --smoke shrinks every grid for CI. Exit is non-zero if, at the most
// severe point of sweep 4, speculation fails to strictly improve p99 over
// retry-only for any swept scheduler.

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/faults.h"
#include "util/stats.h"

namespace {

using namespace bsio;

core::RunOptions tuned_options() {
  core::RunOptions opts;
  // Keep the IP solves bounded; the heuristic incumbent keeps quality sane.
  opts.ip.selection_mip.time_limit_seconds = 2.0;
  opts.ip.allocation_mip.time_limit_seconds = 4.0;
  opts.ip.max_subbatch_tasks = 40;
  return opts;
}

struct Tail {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Tail tail_of(const sched::BatchRunResult& r) {
  Tail t;
  t.p50 = percentile(r.task_completion_times, 50.0);
  t.p95 = percentile(r.task_completion_times, 95.0);
  t.p99 = percentile(r.task_completion_times, 99.0);
  return t;
}

// One JSON row shared by the three fault sweeps.
struct FaultRow {
  std::string sweep;
  std::string algorithm;
  double param = 0.0;  // prob / crashes / outage seconds
  double makespan = 0.0;
  double vs_fault_free = 0.0;
  std::size_t retries = 0;
  std::size_t reexecutions = 0;
  double recovery_seconds = 0.0;
  Tail tail;
};

// One (severity, scheduler, mode) cell of the speculation crossover.
struct CrossRow {
  std::string algorithm;
  double slowdown = 0.0;
  bool speculative = false;
  double makespan = 0.0;
  Tail tail;
  std::size_t launches = 0;
  std::size_t wins = 0;
  std::size_t cancels = 0;
  double wasted_fraction = 0.0;  // wasted compute / total compute capacity
};

void write_json(const char* path, bool smoke,
                const std::vector<FaultRow>& fault_rows,
                const std::vector<CrossRow>& cross_rows) {
  bench::JsonWriter j(path);
  j.begin_object();
  j.field("bench", "fault_tolerance");
  j.begin_object("config");
  j.field("workload", "IMAGE overlap=0.85 tasks=60");
  j.field("cluster", "4 compute + 4 XIO storage");
  j.field("smoke", smoke);
  j.end_object();
  j.begin_array("fault_sweeps");
  for (const FaultRow& r : fault_rows) {
    j.begin_object();
    j.field("sweep", r.sweep);
    j.field("algorithm", r.algorithm);
    j.field("param", r.param, 2);
    j.field("makespan_seconds", r.makespan, 2);
    j.field("vs_fault_free", r.vs_fault_free, 3);
    j.field("transfer_retries", r.retries);
    j.field("task_reexecutions", r.reexecutions);
    j.field("recovery_seconds", r.recovery_seconds, 2);
    j.field("p50_completion_seconds", r.tail.p50, 2);
    j.field("p95_completion_seconds", r.tail.p95, 2);
    j.field("p99_completion_seconds", r.tail.p99, 2);
    j.end_object();
  }
  j.end_array();
  j.begin_array("speculation_crossover");
  for (const CrossRow& r : cross_rows) {
    j.begin_object();
    j.field("algorithm", r.algorithm);
    j.field("slowdown_factor", r.slowdown, 1);
    j.field("mode", r.speculative ? "speculative" : "retry-only");
    j.field("makespan_seconds", r.makespan, 2);
    j.field("p50_completion_seconds", r.tail.p50, 2);
    j.field("p95_completion_seconds", r.tail.p95, 2);
    j.field("p99_completion_seconds", r.tail.p99, 2);
    j.field("speculative_launches", r.launches);
    j.field("speculative_wins", r.wins);
    j.field("speculative_cancels", r.cancels);
    j.field("wasted_fraction", r.wasted_fraction, 4);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsio::bench;

  ParseArgs args(argc, argv);
  const bool smoke = args.has("--smoke");
  const char* out_path = args.value("--out", "BENCH_faults.json");
  args.reject_unknown("fault_tolerance [--smoke] [--out <path>]");

  banner("Fault tolerance — makespan degradation under injected failures",
         "4 compute + 4 XIO storage nodes, 60-task IMAGE batch, seeded "
         "fault injection (transfer failures / node crashes / storage "
         "outages / degraded nodes)",
         "schedulers that replicate aggressively (IP, BiPartition) lose "
         "less to storage outages; crash recovery costs grow with the "
         "share of work on the dead nodes; under a degraded node, "
         "speculative duplicates cut the p99 completion tail at the cost "
         "of some wasted work");

  const wl::Workload w = image_workload(0.85, /*tasks=*/60);
  const sim::ClusterConfig cluster = sim::xio_cluster(4, 4);
  const core::RunOptions base_opts = tuned_options();

  std::vector<FaultRow> fault_rows;
  std::vector<CrossRow> cross_rows;

  // Fault-free reference makespans.
  std::vector<double> reference;
  for (core::Algorithm a : core::all_algorithms())
    reference.push_back(
        core::run_batch_scheduler(a, w, cluster, base_opts).batch_time);

  // --- Sweep 1: transient transfer failures. ---
  {
    Table t({"failure prob", "algorithm", "makespan (s)", "vs fault-free",
             "retries", "recovery (s)", "p50", "p95", "p99"});
    const std::vector<double> probs =
        smoke ? std::vector<double>{0.0, 0.1}
              : std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.3};
    for (double prob : probs) {
      std::size_t i = 0;
      for (core::Algorithm a : core::all_algorithms()) {
        core::RunOptions opts = base_opts;
        opts.faults.transfer_failure_prob = prob;
        auto r = core::run_batch_scheduler(a, w, cluster, opts);
        const Tail tail = tail_of(r);
        t.add_row({format_fixed(prob, 2), core::algorithm_name(a),
                   format_fixed(r.batch_time, 1),
                   format_fixed(r.batch_time / reference[i], 2) + "x",
                   std::to_string(r.stats.transfer_retries),
                   format_fixed(r.stats.recovery_seconds, 1),
                   format_fixed(tail.p50, 1), format_fixed(tail.p95, 1),
                   format_fixed(tail.p99, 1)});
        fault_rows.push_back({"transfer_failures", core::algorithm_name(a),
                              prob, r.batch_time, r.batch_time / reference[i],
                              r.stats.transfer_retries,
                              r.stats.task_reexecutions,
                              r.stats.recovery_seconds, tail});
        std::fprintf(stderr, "  [flaky p=%.2f %s] %.1fs (%zu retries)%s\n",
                     prob, core::algorithm_name(a), r.batch_time,
                     r.stats.transfer_retries,
                     r.ok() ? "" : " FAILED");
        ++i;
      }
    }
    t.print("Sweep 1: transient transfer failures (retry + capped backoff)");
  }

  // --- Sweep 2: compute-node crashes. ---
  {
    Table t({"crashes", "algorithm", "makespan (s)", "vs fault-free",
             "re-executed", "lost replica MB", "p99"});
    const std::vector<int> crash_counts =
        smoke ? std::vector<int>{0, 2} : std::vector<int>{0, 1, 2, 3};
    for (int crashes : crash_counts) {
      std::size_t i = 0;
      for (core::Algorithm a : core::all_algorithms()) {
        core::RunOptions opts = base_opts;
        // Stagger the fail-stops at 30% / 50% / 70% of this scheduler's
        // fault-free makespan so each crash lands mid-run.
        for (int k = 0; k < crashes; ++k)
          opts.faults.compute_crashes.push_back(
              {static_cast<wl::NodeId>(k), (0.3 + 0.2 * k) * reference[i]});
        auto r = core::run_batch_scheduler(a, w, cluster, opts);
        const Tail tail = tail_of(r);
        t.add_row({std::to_string(crashes), core::algorithm_name(a),
                   format_fixed(r.batch_time, 1),
                   format_fixed(r.batch_time / reference[i], 2) + "x",
                   std::to_string(r.stats.task_reexecutions),
                   format_fixed(r.stats.lost_replica_bytes / sim::kMB, 0),
                   format_fixed(tail.p99, 1)});
        fault_rows.push_back({"compute_crashes", core::algorithm_name(a),
                              static_cast<double>(crashes), r.batch_time,
                              r.batch_time / reference[i],
                              r.stats.transfer_retries,
                              r.stats.task_reexecutions,
                              r.stats.recovery_seconds, tail});
        std::fprintf(stderr, "  [crashes=%d %s] %.1fs (%zu re-exec)%s\n",
                     crashes, core::algorithm_name(a), r.batch_time,
                     r.stats.task_reexecutions, r.ok() ? "" : " FAILED");
        ++i;
      }
    }
    t.print("Sweep 2: compute-node crashes (re-schedule on survivors)");
  }

  // --- Sweep 3: storage outage window. ---
  {
    Table t({"outage (s)", "algorithm", "makespan (s)", "vs fault-free",
             "p99"});
    const std::vector<double> lengths =
        smoke ? std::vector<double>{0.0, 60.0}
              : std::vector<double>{0.0, 20.0, 60.0, 120.0};
    for (double len : lengths) {
      std::size_t i = 0;
      for (core::Algorithm a : core::all_algorithms()) {
        core::RunOptions opts = base_opts;
        if (len > 0.0) opts.faults.storage_outages = {{0, 5.0, 5.0 + len}};
        auto r = core::run_batch_scheduler(a, w, cluster, opts);
        const Tail tail = tail_of(r);
        t.add_row({format_fixed(len, 0), core::algorithm_name(a),
                   format_fixed(r.batch_time, 1),
                   format_fixed(r.batch_time / reference[i], 2) + "x",
                   format_fixed(tail.p99, 1)});
        fault_rows.push_back({"storage_outage", core::algorithm_name(a), len,
                              r.batch_time, r.batch_time / reference[i],
                              r.stats.transfer_retries,
                              r.stats.task_reexecutions,
                              r.stats.recovery_seconds, tail});
        std::fprintf(stderr, "  [outage=%.0fs %s] %.1fs%s\n", len,
                     core::algorithm_name(a), r.batch_time,
                     r.ok() ? "" : " FAILED");
        ++i;
      }
    }
    t.print("Sweep 3: storage-node outage (degraded replica sourcing)");
  }

  // --- Sweep 4: degraded compute node, retry-only vs speculation. ---
  // Node 0 runs at 1/factor speed for the whole batch; the planners are
  // blind to it, so every task placed there becomes a straggler. The
  // speculative runs duplicate stragglers onto faster nodes with
  // first-finish-wins cancellation. The crossover: at factor 1 speculation
  // only wastes work, at high factors it pulls the p99 tail in.
  bool crossover_holds = true;
  {
    Table t({"slowdown", "algorithm", "mode", "makespan (s)", "p50", "p99",
             "dup/win/cxl", "wasted frac"});
    const std::vector<double> factors =
        smoke ? std::vector<double>{1.0, 8.0}
              : std::vector<double>{1.0, 2.0, 4.0, 8.0};
    const std::vector<core::Algorithm> cross_algos = {
        core::Algorithm::kMinMin, core::Algorithm::kBiPartition};
    const double most_severe = factors.back();
    for (double factor : factors) {
      for (core::Algorithm a : cross_algos) {
        double retry_p99 = 0.0;
        for (bool speculative : {false, true}) {
          core::RunOptions opts = base_opts;
          if (factor > 1.0)
            opts.faults.compute_slowdowns = {{0, 0.0,
                                              std::numeric_limits<double>::
                                                  infinity(),
                                              factor}};
          if (speculative) {
            opts.speculation.enabled = true;
            opts.speculation.straggler_ratio = 1.5;
            opts.speculation.min_cached_inputs = 0;
          }
          auto r = core::run_batch_scheduler(a, w, cluster, opts);
          CrossRow row;
          row.algorithm = core::algorithm_name(a);
          row.slowdown = factor;
          row.speculative = speculative;
          row.makespan = r.batch_time;
          row.tail = tail_of(r);
          row.launches = r.stats.speculative_launches;
          row.wins = r.stats.speculative_wins;
          row.cancels = r.stats.speculative_cancels;
          // Wasted compute as a share of the whole cluster-time envelope.
          const double envelope =
              r.batch_time *
              static_cast<double>(cluster.num_compute_nodes);
          row.wasted_fraction =
              envelope > 0.0 ? r.stats.wasted_seconds / envelope : 0.0;
          t.add_row({format_fixed(factor, 1), row.algorithm,
                     speculative ? "speculative" : "retry-only",
                     format_fixed(row.makespan, 1),
                     format_fixed(row.tail.p50, 1),
                     format_fixed(row.tail.p99, 1),
                     std::to_string(row.launches) + "/" +
                         std::to_string(row.wins) + "/" +
                         std::to_string(row.cancels),
                     format_fixed(row.wasted_fraction, 3)});
          std::fprintf(stderr,
                       "  [slow x%.0f %s %s] %.1fs p99=%.1fs (%zu dup)\n",
                       factor, row.algorithm.c_str(),
                       speculative ? "spec" : "retry", row.makespan,
                       row.tail.p99, row.launches);
          if (!speculative) {
            retry_p99 = row.tail.p99;
          } else if (factor == most_severe && row.tail.p99 >= retry_p99) {
            std::fprintf(stderr,
                         "fault_tolerance: speculation did not improve p99 "
                         "for %s at slowdown x%.0f (%.2fs vs %.2fs)\n",
                         row.algorithm.c_str(), factor, row.tail.p99,
                         retry_p99);
            crossover_holds = false;
          }
          cross_rows.push_back(std::move(row));
        }
      }
    }
    t.print("Sweep 4: degraded node — retry-only vs speculative duplicates");
  }

  write_json(out_path, smoke, fault_rows, cross_rows);
  std::printf("wrote %s (%zu + %zu rows)\n", out_path, fault_rows.size(),
              cross_rows.size());
  return crossover_holds ? 0 : 1;
}
