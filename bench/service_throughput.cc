// Online-service throughput bench: the cross-batch cache-reuse study.
//
// A BatchArrivalProcess feeds Zipf-skewed batches over one shared file
// catalogue into the ServiceLoop at a sweep of arrival rates; each of the
// four paper schedulers serves the identical arrival sequence twice — warm
// (the cache snapshot each batch leaves behind seeds the next batch's
// engine) and cold (every engine starts empty) — so the emitted
// BENCH_service.json rows carry a per-(scheduler, rate) ablation of
// cross-batch reuse: mean/max response time, queue wait, cross-batch hit
// bytes vs remote bytes, and the carried-snapshot footprint.
//
//   service_throughput [--smoke] [--out <path>]
//
// Exit is non-zero if the warm runs fail the reuse contract for MinMin or
// BiPartition (zero cross-batch hit bytes, or mean response not strictly
// below the cold run) — the CI smoke guards the subsystem's reason to
// exist.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sched/bipartition.h"
#include "sched/ip_scheduler.h"
#include "sched/job_data_present.h"
#include "sched/minmin.h"
#include "service/arrival.h"
#include "service/catalog.h"
#include "service/service.h"
#include "sim/cluster.h"
#include "util/ws_runtime.h"

namespace {

using namespace bsio;

struct SchedulerSpec {
  std::string label;
  std::unique_ptr<sched::Scheduler> (*make)();
};

std::unique_ptr<sched::Scheduler> make_minmin() {
  return std::make_unique<sched::MinMinScheduler>();
}
std::unique_ptr<sched::Scheduler> make_jdp() {
  return std::make_unique<sched::JobDataPresentScheduler>();
}
std::unique_ptr<sched::Scheduler> make_bipartition() {
  return std::make_unique<sched::BiPartitionScheduler>();
}
std::unique_ptr<sched::Scheduler> make_ip() {
  sched::IpSchedulerOptions o = sched::IpScheduler::default_options();
  // The perf_makespan budget rationale applies: warm-started incumbents
  // make long polish a no-op, so tight budgets keep the sweep affordable.
  o.selection_mip.time_limit_seconds = 0.04;
  o.allocation_mip.time_limit_seconds = 0.04;
  o.selection_mip.stall_node_limit = 64;
  o.allocation_mip.stall_node_limit = 64;
  return std::make_unique<sched::IpScheduler>(o);
}

// Limited disks on a slow-storage cluster: re-staging is expensive and
// carried copies fit, so cross-batch reuse has room to pay off.
sim::ClusterConfig service_cluster(std::size_t compute_nodes) {
  sim::ClusterConfig c;
  c.num_compute_nodes = compute_nodes;
  c.num_storage_nodes = 4;
  c.storage_disk_bw = 50.0 * sim::kMB;
  c.storage_net_bw = 500.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;
  c.local_disk_bw = 200.0 * sim::kMB;
  c.disk_capacity = 2.0 * sim::kGB;
  return c;
}

struct ServiceRow {
  std::string scheduler;
  double rate = 0.0;
  bool warm = false;
  service::ServiceStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs args(argc, argv);
  const bool smoke = args.has("--smoke");
  const char* out_path = args.value("--out", "BENCH_service.json");
  args.reject_unknown("service_throughput [--smoke] [--out <path>]");

  WsRuntime::set_global_threads(1);

  const std::size_t compute_nodes = smoke ? 4 : 8;
  const std::size_t num_batches = smoke ? 4 : 8;
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.02}
            : std::vector<double>{0.005, 0.02, 0.08};

  service::SharedCatalogConfig cat_cfg;
  cat_cfg.num_files = smoke ? 128 : 256;
  cat_cfg.num_storage_nodes = 4;
  cat_cfg.seed = 11;
  const std::vector<wl::FileInfo> catalog =
      service::make_shared_catalog(cat_cfg);

  service::ServiceBatchConfig batch_cfg;
  batch_cfg.tasks_per_batch = smoke ? 16 : 32;
  batch_cfg.files_per_task = 4;
  batch_cfg.zipf_s = 1.2;  // hot files recur across batches

  const sim::ClusterConfig cluster = service_cluster(compute_nodes);

  const std::vector<SchedulerSpec> specs = {
      {"MinMin", &make_minmin},
      {"JobDataPresent", &make_jdp},
      {"BiPartition", &make_bipartition},
      {"IP", &make_ip},
  };

  std::printf("service_throughput: %zu compute nodes, %zu batches/run%s\n\n",
              compute_nodes, num_batches, smoke ? " (smoke)" : "");
  std::printf("%-16s %7s %5s %10s %10s %12s %12s\n", "scheduler", "rate",
              "warm", "mean-resp", "max-resp", "xbatch [MB]", "remote [MB]");

  std::vector<ServiceRow> rows;
  bool acceptance_ok = true;
  for (const auto& spec : specs) {
    for (double rate : rates) {
      service::ArrivalConfig arrival_cfg;
      arrival_cfg.rate = rate;
      arrival_cfg.num_batches = num_batches;
      arrival_cfg.seed = 3;
      service::BatchArrivalProcess arrivals(catalog, batch_cfg, arrival_cfg);

      double warm_response = 0.0, cold_response = 0.0;
      double warm_hits = 0.0;
      for (bool warm : {false, true}) {
        auto gen = arrivals.generate();
        if (!gen.ok()) {
          std::fprintf(stderr, "service_throughput: %s\n",
                       gen.error().message.c_str());
          return 1;
        }
        auto scheduler = spec.make();
        service::ServiceOptions options;
        options.warm_start = warm;
        service::ServiceLoop loop(*scheduler, cluster, catalog.size(),
                                  options);
        auto run = loop.run(std::move(gen).value());
        if (!run.ok()) {
          std::fprintf(stderr, "service_throughput: %s %s run failed: %s\n",
                       spec.label.c_str(), warm ? "warm" : "cold",
                       run.error().message.c_str());
          return 1;
        }
        const service::ServiceStats& s = run.value().stats;
        (warm ? warm_response : cold_response) = s.mean_response_time;
        if (warm) warm_hits = s.cross_batch_hit_bytes;
        std::printf("%-16s %7.3f %5s %10.2f %10.2f %12.1f %12.1f\n",
                    spec.label.c_str(), rate, warm ? "yes" : "no",
                    s.mean_response_time, s.max_response_time,
                    s.cross_batch_hit_bytes / sim::kMB,
                    s.remote_bytes / sim::kMB);
        std::fflush(stdout);
        ServiceRow row;
        row.scheduler = spec.label;
        row.rate = rate;
        row.warm = warm;
        row.stats = s;
        rows.push_back(std::move(row));
      }

      // The subsystem's acceptance contract, enforced for the schedulers
      // whose planners exploit residency directly.
      if (spec.label == "MinMin" || spec.label == "BiPartition") {
        if (warm_hits <= 0.0) {
          std::fprintf(stderr,
                       "service_throughput: %s warm run at rate %.3f served "
                       "no cross-batch bytes\n",
                       spec.label.c_str(), rate);
          acceptance_ok = false;
        }
        if (warm_response >= cold_response) {
          std::fprintf(stderr,
                       "service_throughput: %s warm mean response %.2f s is "
                       "not below cold %.2f s at rate %.3f\n",
                       spec.label.c_str(), warm_response, cold_response,
                       rate);
          acceptance_ok = false;
        }
      }
    }
  }

  bench::JsonWriter j(out_path);
  j.begin_object();
  j.field("bench", "service_throughput");
  j.begin_object("config");
  j.field("compute_nodes", compute_nodes);
  j.field("num_batches", num_batches);
  j.field("catalog_files", catalog.size());
  j.field("tasks_per_batch", batch_cfg.tasks_per_batch);
  j.field("files_per_task", batch_cfg.files_per_task);
  j.field("zipf_s", batch_cfg.zipf_s, 2);
  j.field("smoke", smoke);
  j.end_object();
  j.field("peak_rss_mb", bench::peak_rss_mb(), 1);
  j.begin_array("results");
  for (const ServiceRow& r : rows) {
    const service::ServiceStats& s = r.stats;
    j.begin_object();
    j.field("scheduler", r.scheduler);
    j.field("arrival_rate", r.rate, 4);
    j.field("warm", r.warm);
    j.field("batches_served", s.batches_served);
    j.field("rejected_batches", s.rejected_batches);
    j.field("mean_queue_wait_seconds", s.mean_queue_wait);
    j.field("mean_response_seconds", s.mean_response_time);
    j.field("max_response_seconds", s.max_response_time);
    j.field("total_planning_seconds", s.total_planning_seconds);
    j.field("total_makespan_seconds", s.total_makespan);
    j.field("completion_seconds", s.completion_time);
    j.field("cross_batch_hit_bytes", s.cross_batch_hit_bytes, 0);
    j.field("remote_bytes", s.remote_bytes, 0);
    j.field("carried_bytes_final", s.carried_bytes_final, 0);
    j.field("evicted_bytes", s.evicted_bytes, 0);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("\nwrote %s (%zu rows)\n", out_path, rows.size());

  if (!acceptance_ok) {
    std::fprintf(stderr,
                 "service_throughput: warm-vs-cold ablation failed the "
                 "cross-batch reuse contract\n");
    return 1;
  }
  return 0;
}
