// Online-service throughput bench: the cross-batch cache-reuse study.
//
// A BatchArrivalProcess feeds Zipf-skewed batches over one shared file
// catalogue into the ServiceLoop at a sweep of arrival rates; each of the
// four paper schedulers serves the identical arrival sequence twice — warm
// (the cache snapshot each batch leaves behind seeds the next batch's
// engine) and cold (every engine starts empty) — so the emitted
// BENCH_service.json rows carry a per-(scheduler, rate) ablation of
// cross-batch reuse: mean/max response time, queue wait, cross-batch hit
// bytes vs remote bytes, and the carried-snapshot footprint.
//
//   service_throughput [--smoke] [--out <path>]
//   service_throughput --stream [--smoke] [--out <path>] [--min-slo <frac>]
//
// Exit is non-zero if the warm runs fail the reuse contract for MinMin or
// BiPartition (zero cross-batch hit bytes, or mean response not strictly
// below the cold run) — the CI smoke guards the subsystem's reason to
// exist.
//
// --stream runs the rolling-horizon study instead: one MinMin batch is run
// cold to calibrate the mean batch makespan m, then Poisson arrivals at
// utilizations {0.5, 0.9, 1.2} (rate = u / m) with two SLO classes
// (premium: deadline 3m, weight 4; standard: 8m, weight 1) are served
// twice over the IDENTICAL arrival sequence — by the batch-barrier
// ServiceLoop (FIFO, warm start; SLO attainment judged post hoc) and by
// the StreamServiceLoop (incremental MinMin, deadline-aware admission with
// aging, horizon window m/2). Rows land in BENCH_service.json with p50/p99
// batch response and SLO attainment per mode. Exit is non-zero when, at
// u = 0.9, the stream p99 is not strictly below the batch-barrier p99, or
// stream SLO attainment falls below the barrier's or below --min-slo
// (default 0.5) — the rolling-horizon subsystem's acceptance gate.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sched/bipartition.h"
#include "sched/driver.h"
#include "sched/ip_scheduler.h"
#include "sched/job_data_present.h"
#include "sched/minmin.h"
#include "service/arrival.h"
#include "service/catalog.h"
#include "service/service.h"
#include "service/stream.h"
#include "sim/cluster.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/ws_runtime.h"

namespace {

using namespace bsio;

struct SchedulerSpec {
  std::string label;
  std::unique_ptr<sched::Scheduler> (*make)();
};

std::unique_ptr<sched::Scheduler> make_minmin() {
  return std::make_unique<sched::MinMinScheduler>();
}
std::unique_ptr<sched::Scheduler> make_jdp() {
  return std::make_unique<sched::JobDataPresentScheduler>();
}
std::unique_ptr<sched::Scheduler> make_bipartition() {
  return std::make_unique<sched::BiPartitionScheduler>();
}
std::unique_ptr<sched::Scheduler> make_ip() {
  sched::IpSchedulerOptions o = sched::IpScheduler::default_options();
  // The perf_makespan budget rationale applies: warm-started incumbents
  // make long polish a no-op, so tight budgets keep the sweep affordable.
  o.selection_mip.time_limit_seconds = 0.04;
  o.allocation_mip.time_limit_seconds = 0.04;
  o.selection_mip.stall_node_limit = 64;
  o.allocation_mip.stall_node_limit = 64;
  return std::make_unique<sched::IpScheduler>(o);
}

// Limited disks on a slow-storage cluster: re-staging is expensive and
// carried copies fit, so cross-batch reuse has room to pay off.
sim::ClusterConfig service_cluster(std::size_t compute_nodes) {
  sim::ClusterConfig c;
  c.num_compute_nodes = compute_nodes;
  c.num_storage_nodes = 4;
  c.storage_disk_bw = 50.0 * sim::kMB;
  c.storage_net_bw = 500.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;
  c.local_disk_bw = 200.0 * sim::kMB;
  c.disk_capacity = 2.0 * sim::kGB;
  return c;
}

struct ServiceRow {
  std::string scheduler;
  double rate = 0.0;
  bool warm = false;
  service::ServiceStats stats;
};

// One (mode, utilization) row of the rolling-horizon study.
struct StreamRow {
  std::string mode;  // "batch_barrier" or "stream"
  double utilization = 0.0;
  double rate = 0.0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t degraded = 0;
  double mean_response = 0.0;
  double p50_response = 0.0;
  double p99_response = 0.0;
  double slo_attainment = 0.0;
  double planning_seconds = 0.0;
  std::size_t windows = 0;  // horizon windows (stream) / batches (barrier)
  double completion_seconds = 0.0;
};

int run_stream_study(bool smoke, const char* out_path, double min_slo) {
  const std::size_t compute_nodes = smoke ? 4 : 8;
  const std::size_t num_batches = smoke ? 6 : 12;
  const std::vector<double> utilizations =
      smoke ? std::vector<double>{0.9} : std::vector<double>{0.5, 0.9, 1.2};

  service::SharedCatalogConfig cat_cfg;
  cat_cfg.num_files = smoke ? 128 : 256;
  cat_cfg.num_storage_nodes = 4;
  cat_cfg.seed = 11;
  const std::vector<wl::FileInfo> catalog =
      service::make_shared_catalog(cat_cfg);
  service::ServiceBatchConfig batch_cfg;
  batch_cfg.tasks_per_batch = smoke ? 16 : 32;
  batch_cfg.files_per_task = 4;
  batch_cfg.zipf_s = 1.2;
  const sim::ClusterConfig cluster = service_cluster(compute_nodes);

  // Calibration: one cold MinMin batch fixes the utilization unit m.
  double m = 0.0;
  {
    // Same content seed as arrival 0 of the sweeps below.
    const wl::Workload probe =
        service::make_service_batch(catalog, batch_cfg, hash_mix(3 ^ 0));
    sched::MinMinScheduler mm;
    const sched::BatchRunResult r =
        sched::run_batch(mm, probe, cluster, sched::BatchRunOptions{});
    if (!r.ok()) {
      std::fprintf(stderr, "service_throughput: calibration failed: %s\n",
                   r.error.c_str());
      return 1;
    }
    m = r.batch_time;
  }
  const std::vector<service::SloClass> slo_classes = {
      {3.0 * m, 4.0},  // premium
      {8.0 * m, 1.0},  // standard
  };
  std::printf(
      "service_throughput --stream: %zu compute nodes, %zu batches/run, "
      "calibrated batch makespan %.2f s%s\n\n",
      compute_nodes, num_batches, m, smoke ? " (smoke)" : "");
  std::printf("%-14s %5s %10s %10s %10s %6s %6s\n", "mode", "util", "p50",
              "p99", "attain", "shed", "degr");

  std::vector<StreamRow> rows;
  bool acceptance_ok = true;
  for (double u : utilizations) {
    service::ArrivalConfig arrival_cfg;
    arrival_cfg.rate = u / m;
    arrival_cfg.num_batches = num_batches;
    arrival_cfg.seed = 3;
    arrival_cfg.slo_classes = slo_classes;
    service::BatchArrivalProcess arrivals(catalog, batch_cfg, arrival_cfg);

    double barrier_p99 = 0.0, barrier_att = 0.0;
    for (const bool stream_mode : {false, true}) {
      auto gen = arrivals.generate();
      if (!gen.ok()) {
        std::fprintf(stderr, "service_throughput: %s\n",
                     gen.error().message.c_str());
        return 1;
      }
      StreamRow row;
      row.mode = stream_mode ? "stream" : "batch_barrier";
      row.utilization = u;
      row.rate = arrival_cfg.rate;
      // Both modes judge against the original per-index SLO classes.
      std::vector<service::SloClass> slo_of(num_batches);
      for (const service::BatchArrival& a : gen.value())
        slo_of[a.index] = a.slo;

      if (stream_mode) {
        sched::MinMinScheduler mm;
        service::StreamOptions opts;
        opts.admission.policy = service::AdmissionPolicy::kDeadlineAware;
        opts.admission.aging_weight = 0.25;
        opts.horizon.window_seconds = 0.5 * m;
        service::StreamServiceLoop loop(mm, cluster, catalog, opts);
        auto run = loop.run(std::move(gen).value());
        if (!run.ok()) {
          std::fprintf(stderr, "service_throughput: stream run failed: %s\n",
                       run.error().message.c_str());
          return 1;
        }
        const service::StreamStats& s = run.value().stats;
        row.completed = s.batches_completed;
        row.rejected = s.rejected_batches;
        row.shed = s.shed_batches;
        row.degraded = s.degraded_batches;
        row.mean_response = s.mean_response;
        row.p50_response = s.p50_response;
        row.p99_response = s.p99_response;
        row.slo_attainment = s.slo_attainment;
        row.planning_seconds = s.total_planning_seconds;
        row.windows = s.windows_committed;
        row.completion_seconds = s.completion_time;
      } else {
        sched::MinMinScheduler mm;
        service::ServiceOptions options;  // FIFO, warm start
        service::ServiceLoop loop(mm, cluster, catalog.size(), options);
        auto run = loop.run(std::move(gen).value());
        if (!run.ok()) {
          std::fprintf(stderr, "service_throughput: barrier run failed: %s\n",
                       run.error().message.c_str());
          return 1;
        }
        const service::ServiceResult& r = run.value();
        std::vector<double> responses;
        std::size_t met = 0;
        for (const service::BatchServiceMetrics& b : r.batches) {
          responses.push_back(b.response_time);
          if (b.response_time <= slo_of[b.index].deadline_seconds) ++met;
        }
        row.completed = r.stats.batches_served;
        row.rejected = r.stats.rejected_batches;
        row.mean_response = r.stats.mean_response_time;
        if (!responses.empty()) {
          row.p50_response = percentile(responses, 50.0);
          row.p99_response = percentile(responses, 99.0);
        }
        // Rejected batches count as missed, same rule as the stream loop.
        row.slo_attainment =
            static_cast<double>(met) / static_cast<double>(num_batches);
        row.planning_seconds = r.stats.total_planning_seconds;
        row.windows = r.stats.batches_served;
        row.completion_seconds = r.stats.completion_time;
      }
      std::printf("%-14s %5.2f %10.2f %10.2f %9.0f%% %6zu %6zu\n",
                  row.mode.c_str(), u, row.p50_response, row.p99_response,
                  100.0 * row.slo_attainment, row.shed, row.degraded);
      std::fflush(stdout);
      if (!stream_mode) {
        barrier_p99 = row.p99_response;
        barrier_att = row.slo_attainment;
      } else if (u > 0.85 && u < 0.95) {
        // The acceptance gate: at ~0.9 utilization the incremental planner
        // must cut the tail without giving back SLO attainment.
        if (row.p99_response >= barrier_p99) {
          std::fprintf(stderr,
                       "service_throughput: stream p99 %.2f s is not below "
                       "the batch-barrier p99 %.2f s at u=%.2f\n",
                       row.p99_response, barrier_p99, u);
          acceptance_ok = false;
        }
        if (row.slo_attainment < barrier_att ||
            row.slo_attainment < min_slo) {
          std::fprintf(stderr,
                       "service_throughput: stream SLO attainment %.2f at "
                       "u=%.2f below barrier %.2f or floor %.2f\n",
                       row.slo_attainment, u, barrier_att, min_slo);
          acceptance_ok = false;
        }
      }
      rows.push_back(std::move(row));
    }
  }

  bench::JsonWriter j(out_path);
  j.begin_object();
  j.field("bench", "service_throughput_stream");
  j.begin_object("config");
  j.field("compute_nodes", compute_nodes);
  j.field("num_batches", num_batches);
  j.field("catalog_files", catalog.size());
  j.field("tasks_per_batch", batch_cfg.tasks_per_batch);
  j.field("calibrated_makespan_seconds", m);
  j.field("horizon_window_seconds", 0.5 * m);
  j.field("min_slo", min_slo, 2);
  j.field("smoke", smoke);
  j.end_object();
  j.field("peak_rss_mb", bench::peak_rss_mb(), 1);
  j.begin_array("results");
  for (const StreamRow& r : rows) {
    j.begin_object();
    j.field("mode", r.mode);
    j.field("utilization", r.utilization, 2);
    j.field("arrival_rate", r.rate, 6);
    j.field("batches_completed", r.completed);
    j.field("rejected_batches", r.rejected);
    j.field("shed_batches", r.shed);
    j.field("degraded_batches", r.degraded);
    j.field("mean_response_seconds", r.mean_response);
    j.field("p50_response_seconds", r.p50_response);
    j.field("p99_response_seconds", r.p99_response);
    j.field("slo_attainment", r.slo_attainment, 4);
    j.field("total_planning_seconds", r.planning_seconds);
    j.field("windows", r.windows);
    j.field("completion_seconds", r.completion_seconds);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("\nwrote %s (%zu rows)\n", out_path, rows.size());

  if (!acceptance_ok) {
    std::fprintf(stderr,
                 "service_throughput: rolling-horizon acceptance gate "
                 "failed\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs args(argc, argv);
  const bool smoke = args.has("--smoke");
  const bool stream = args.has("--stream");
  const char* out_path = args.value("--out", "BENCH_service.json");
  const double min_slo = std::atof(args.value("--min-slo", "0.5"));
  args.reject_unknown(
      "service_throughput [--stream] [--smoke] [--out <path>] "
      "[--min-slo <frac>]");

  WsRuntime::set_global_threads(1);

  if (stream) return run_stream_study(smoke, out_path, min_slo);

  const std::size_t compute_nodes = smoke ? 4 : 8;
  const std::size_t num_batches = smoke ? 4 : 8;
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.02}
            : std::vector<double>{0.005, 0.02, 0.08};

  service::SharedCatalogConfig cat_cfg;
  cat_cfg.num_files = smoke ? 128 : 256;
  cat_cfg.num_storage_nodes = 4;
  cat_cfg.seed = 11;
  const std::vector<wl::FileInfo> catalog =
      service::make_shared_catalog(cat_cfg);

  service::ServiceBatchConfig batch_cfg;
  batch_cfg.tasks_per_batch = smoke ? 16 : 32;
  batch_cfg.files_per_task = 4;
  batch_cfg.zipf_s = 1.2;  // hot files recur across batches

  const sim::ClusterConfig cluster = service_cluster(compute_nodes);

  const std::vector<SchedulerSpec> specs = {
      {"MinMin", &make_minmin},
      {"JobDataPresent", &make_jdp},
      {"BiPartition", &make_bipartition},
      {"IP", &make_ip},
  };

  std::printf("service_throughput: %zu compute nodes, %zu batches/run%s\n\n",
              compute_nodes, num_batches, smoke ? " (smoke)" : "");
  std::printf("%-16s %7s %5s %10s %10s %12s %12s\n", "scheduler", "rate",
              "warm", "mean-resp", "max-resp", "xbatch [MB]", "remote [MB]");

  std::vector<ServiceRow> rows;
  bool acceptance_ok = true;
  for (const auto& spec : specs) {
    for (double rate : rates) {
      service::ArrivalConfig arrival_cfg;
      arrival_cfg.rate = rate;
      arrival_cfg.num_batches = num_batches;
      arrival_cfg.seed = 3;
      service::BatchArrivalProcess arrivals(catalog, batch_cfg, arrival_cfg);

      double warm_response = 0.0, cold_response = 0.0;
      double warm_hits = 0.0;
      for (bool warm : {false, true}) {
        auto gen = arrivals.generate();
        if (!gen.ok()) {
          std::fprintf(stderr, "service_throughput: %s\n",
                       gen.error().message.c_str());
          return 1;
        }
        auto scheduler = spec.make();
        service::ServiceOptions options;
        options.warm_start = warm;
        service::ServiceLoop loop(*scheduler, cluster, catalog.size(),
                                  options);
        auto run = loop.run(std::move(gen).value());
        if (!run.ok()) {
          std::fprintf(stderr, "service_throughput: %s %s run failed: %s\n",
                       spec.label.c_str(), warm ? "warm" : "cold",
                       run.error().message.c_str());
          return 1;
        }
        const service::ServiceStats& s = run.value().stats;
        (warm ? warm_response : cold_response) = s.mean_response_time;
        if (warm) warm_hits = s.cross_batch_hit_bytes;
        std::printf("%-16s %7.3f %5s %10.2f %10.2f %12.1f %12.1f\n",
                    spec.label.c_str(), rate, warm ? "yes" : "no",
                    s.mean_response_time, s.max_response_time,
                    s.cross_batch_hit_bytes / sim::kMB,
                    s.remote_bytes / sim::kMB);
        std::fflush(stdout);
        ServiceRow row;
        row.scheduler = spec.label;
        row.rate = rate;
        row.warm = warm;
        row.stats = s;
        rows.push_back(std::move(row));
      }

      // The subsystem's acceptance contract, enforced for the schedulers
      // whose planners exploit residency directly.
      if (spec.label == "MinMin" || spec.label == "BiPartition") {
        if (warm_hits <= 0.0) {
          std::fprintf(stderr,
                       "service_throughput: %s warm run at rate %.3f served "
                       "no cross-batch bytes\n",
                       spec.label.c_str(), rate);
          acceptance_ok = false;
        }
        if (warm_response >= cold_response) {
          std::fprintf(stderr,
                       "service_throughput: %s warm mean response %.2f s is "
                       "not below cold %.2f s at rate %.3f\n",
                       spec.label.c_str(), warm_response, cold_response,
                       rate);
          acceptance_ok = false;
        }
      }
    }
  }

  bench::JsonWriter j(out_path);
  j.begin_object();
  j.field("bench", "service_throughput");
  j.begin_object("config");
  j.field("compute_nodes", compute_nodes);
  j.field("num_batches", num_batches);
  j.field("catalog_files", catalog.size());
  j.field("tasks_per_batch", batch_cfg.tasks_per_batch);
  j.field("files_per_task", batch_cfg.files_per_task);
  j.field("zipf_s", batch_cfg.zipf_s, 2);
  j.field("smoke", smoke);
  j.end_object();
  j.field("peak_rss_mb", bench::peak_rss_mb(), 1);
  j.begin_array("results");
  for (const ServiceRow& r : rows) {
    const service::ServiceStats& s = r.stats;
    j.begin_object();
    j.field("scheduler", r.scheduler);
    j.field("arrival_rate", r.rate, 4);
    j.field("warm", r.warm);
    j.field("batches_served", s.batches_served);
    j.field("rejected_batches", s.rejected_batches);
    j.field("mean_queue_wait_seconds", s.mean_queue_wait);
    j.field("mean_response_seconds", s.mean_response_time);
    j.field("max_response_seconds", s.max_response_time);
    j.field("total_planning_seconds", s.total_planning_seconds);
    j.field("total_makespan_seconds", s.total_makespan);
    j.field("completion_seconds", s.completion_time);
    j.field("cross_batch_hit_bytes", s.cross_batch_hit_bytes, 0);
    j.field("remote_bytes", s.remote_bytes, 0);
    j.field("carried_bytes_final", s.carried_bytes_final, 0);
    j.field("evicted_bytes", s.evicted_bytes, 0);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("\nwrote %s (%zu rows)\n", out_path, rows.size());

  if (!acceptance_ok) {
    std::fprintf(stderr,
                 "service_throughput: warm-vs-cold ablation failed the "
                 "cross-batch reuse contract\n");
    return 1;
  }
  return 0;
}
