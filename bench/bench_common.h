// Shared helpers for the figure-reproduction benches: the common workload
// builders, a single CLI flag parser, and a streaming JSON emitter — so
// each bench main declares its knobs and rows instead of re-implementing
// strcmp loops and fprintf comma bookkeeping.
#pragma once

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "workload/image.h"
#include "workload/sat.h"
#include "workload/stats.h"

namespace bsio::bench {

// Peak resident set size of this process so far, in MB (getrusage). Every
// BENCH JSON reports it alongside timing so memory regressions surface in
// the same artifacts as slowdowns. Monotone over the process lifetime: a
// sweep's per-point values reflect the high-water mark up to that point.
inline double peak_rss_mb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // kilobytes
#endif
}

// Minimal argv scanner for the bench mains. Flags are queried, not
// pre-registered: has("--smoke") consumes a bare flag, value/number
// consume `--flag <operand>` pairs. After all queries, unknown() reports
// anything left unconsumed so typos fail loudly instead of silently
// running the default grid.
class ParseArgs {
 public:
  ParseArgs(int argc, char** argv)
      : argv_(argv + 1, argv + argc), used_(argv_.size(), false) {}

  // True (and consumed) if the bare flag is present.
  bool has(const char* name) {
    for (std::size_t i = 0; i < argv_.size(); ++i)
      if (!used_[i] && std::strcmp(argv_[i], name) == 0) {
        used_[i] = true;
        return true;
      }
    return false;
  }

  // `--flag <operand>`: the operand, or `def` when absent.
  const char* value(const char* name, const char* def) {
    for (std::size_t i = 0; i + 1 < argv_.size(); ++i)
      if (!used_[i] && std::strcmp(argv_[i], name) == 0) {
        used_[i] = used_[i + 1] = true;
        return argv_[i + 1];
      }
    return def;
  }

  double number(const char* name, double def) {
    const char* v = value(name, nullptr);
    return v != nullptr ? std::atof(v) : def;
  }

  // Exits with a usage hint if any argument was never consumed. Call after
  // the last query.
  void reject_unknown(const char* usage) const {
    for (std::size_t i = 0; i < argv_.size(); ++i)
      if (!used_[i]) {
        std::fprintf(stderr, "unknown argument '%s'\nusage: %s\n", argv_[i],
                     usage);
        std::exit(2);
      }
  }

 private:
  std::vector<char*> argv_;
  std::vector<bool> used_;
};

// Streaming JSON emitter with automatic comma placement. Keys and string
// values are emitted verbatim (the benches only write identifier-like
// strings — no escaping). Nesting is tracked by a stack; mismatched
// begin/end aborts via the C library (fclose on nullptr never happens —
// open failure exits immediately with a message).
class JsonWriter {
 public:
  explicit JsonWriter(const char* path) : f_(std::fopen(path, "w")) {
    if (f_ == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      std::exit(1);
    }
  }
  ~JsonWriter() {
    if (f_ != nullptr) std::fclose(f_);
  }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object(const char* key = nullptr) { open('{', key); }
  void end_object() { close('}'); }
  void begin_array(const char* key = nullptr) { open('[', key); }
  void end_array() { close(']'); }

  void field(const char* key, const char* v) {
    prefix(key);
    std::fprintf(f_, "\"%s\"", v);
  }
  void field(const char* key, const std::string& v) { field(key, v.c_str()); }
  void field(const char* key, bool v) {
    prefix(key);
    std::fprintf(f_, "%s", v ? "true" : "false");
  }
  void field(const char* key, double v, int precision = 6) {
    prefix(key);
    std::fprintf(f_, "%.*f", precision, v);
  }
  void field(const char* key, std::size_t v) {
    prefix(key);
    std::fprintf(f_, "%zu", v);
  }
  void field(const char* key, long v) {
    prefix(key);
    std::fprintf(f_, "%ld", v);
  }
  void field(const char* key, unsigned v) {
    prefix(key);
    std::fprintf(f_, "%u", v);
  }

 private:
  // Comma-separates siblings, then writes the key (inside objects).
  void prefix(const char* key) {
    if (!first_.empty()) {
      if (!first_.back()) std::fputs(",", f_);
      first_.back() = false;
      std::fputs("\n", f_);
      for (std::size_t i = 0; i < first_.size(); ++i) std::fputs("  ", f_);
    }
    if (key != nullptr) std::fprintf(f_, "\"%s\": ", key);
  }
  void open(char bracket, const char* key) {
    prefix(key);
    std::fputc(bracket, f_);
    first_.push_back(true);
  }
  void close(char bracket) {
    const bool empty = first_.back();
    first_.pop_back();
    if (!empty) {
      std::fputs("\n", f_);
      for (std::size_t i = 0; i < first_.size(); ++i) std::fputs("  ", f_);
    }
    std::fputc(bracket, f_);
    if (first_.empty()) std::fputs("\n", f_);
  }

  std::FILE* f_;
  std::vector<bool> first_;  // per open scope: no element emitted yet
};

inline void banner(const std::string& fig, const std::string& setup,
                   const std::string& expectation) {
  std::printf("=====================================================\n");
  std::printf("%s\n", fig.c_str());
  std::printf("setup: %s\n", setup.c_str());
  std::printf("paper-expected shape: %s\n", expectation.c_str());
  std::printf("=====================================================\n");
  std::fflush(stdout);
}

inline std::string overlap_label(double ov) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%% overlap", ov * 100.0);
  return buf;
}

// The paper's Fig 3/4 IMAGE workload: 100 tasks, 8 files/task average.
inline wl::Workload image_workload(double overlap, std::size_t tasks = 100,
                                   std::size_t storage_nodes = 4,
                                   std::uint64_t seed = 1) {
  wl::ImageConfig cfg;
  cfg.num_tasks = tasks;
  cfg.num_storage_nodes = storage_nodes;
  cfg.seed = seed;
  return wl::make_image_calibrated(cfg, overlap).workload;
}

// The paper's Fig 3/4 SAT workload: 100 tasks, 8 files/task at high overlap
// and 14 at medium/low.
inline wl::Workload sat_workload(double overlap, std::size_t tasks = 100,
                                 std::size_t storage_nodes = 4,
                                 std::uint64_t seed = 1) {
  wl::SatConfig cfg;
  cfg.num_tasks = tasks;
  cfg.num_storage_nodes = storage_nodes;
  cfg.seed = seed;
  if (overlap < 0.5) cfg.files_per_task = 14.0;
  return wl::make_sat_calibrated(cfg, overlap).workload;
}

}  // namespace bsio::bench
