// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "workload/image.h"
#include "workload/sat.h"
#include "workload/stats.h"

namespace bsio::bench {

inline void banner(const std::string& fig, const std::string& setup,
                   const std::string& expectation) {
  std::printf("=====================================================\n");
  std::printf("%s\n", fig.c_str());
  std::printf("setup: %s\n", setup.c_str());
  std::printf("paper-expected shape: %s\n", expectation.c_str());
  std::printf("=====================================================\n");
  std::fflush(stdout);
}

inline std::string overlap_label(double ov) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%% overlap", ov * 100.0);
  return buf;
}

// The paper's Fig 3/4 IMAGE workload: 100 tasks, 8 files/task average.
inline wl::Workload image_workload(double overlap, std::size_t tasks = 100,
                                   std::size_t storage_nodes = 4,
                                   std::uint64_t seed = 1) {
  wl::ImageConfig cfg;
  cfg.num_tasks = tasks;
  cfg.num_storage_nodes = storage_nodes;
  cfg.seed = seed;
  return wl::make_image_calibrated(cfg, overlap).workload;
}

// The paper's Fig 3/4 SAT workload: 100 tasks, 8 files/task at high overlap
// and 14 at medium/low.
inline wl::Workload sat_workload(double overlap, std::size_t tasks = 100,
                                 std::size_t storage_nodes = 4,
                                 std::uint64_t seed = 1) {
  wl::SatConfig cfg;
  cfg.num_tasks = tasks;
  cfg.num_storage_nodes = storage_nodes;
  cfg.seed = seed;
  if (overlap < 0.5) cfg.files_per_task = 14.0;
  return wl::make_sat_calibrated(cfg, overlap).workload;
}

}  // namespace bsio::bench
